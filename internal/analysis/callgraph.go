package analysis

// The interprocedural layer: a module-wide call graph shared by every
// analyzer that needs to see past a single function body.
//
// The old suite was purely syntactic and intraprocedural — a
// time.Now() hidden one helper deep passed the lint. The Module built
// here closes that hole: it indexes every function declaration in the
// analyzed packages, records the calls each one makes (static calls,
// function values that escape into other code, and interface calls
// resolved by class-hierarchy analysis over the module's named types),
// and exposes the graph to the analyzers through Pass.Mod. The graph is
// built once per run and cached; golden tests build one-package modules
// and the driver builds the whole-module graph.
//
// Precision notes, in the same spirit as the loader's faked stdlib:
//
//   - Function literals are attributed to the enclosing declared
//     function: a closure's body is part of its creator's behavior for
//     both taint propagation and the noalloc contract.
//   - A reference to a function that is not a call (passing it as a
//     value, assigning it to a field) is recorded as a may-call edge —
//     conservative for taint, where handing a nondeterministic helper
//     to someone else is as bad as calling it.
//   - Interface method calls fan out to every module type that
//     implements the interface (CHA). Stdlib interfaces resolve to
//     nothing because stdlib packages are faked; analyzers treat those
//     calls as unknown.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallKind classifies a call-graph edge.
type CallKind uint8

const (
	// CallStatic is a direct call to a known function or method.
	CallStatic CallKind = iota
	// CallDynamic is an interface-method call resolved by CHA: the
	// callee is one possible concrete target.
	CallDynamic
	// CallRef is a reference to a function value that is not itself a
	// call (passed, stored, returned): the function may run later.
	CallRef
)

// CallEdge is one outgoing edge of a call-graph node.
type CallEdge struct {
	// Callee is the target function's key (see funcKey).
	Callee string
	// Pos is the call or reference site.
	Pos token.Pos
	// Kind records how the edge was derived.
	Kind CallKind
}

// FuncNode is one declared function in the module.
type FuncNode struct {
	// Key identifies the function: "pkgpath.Name" or
	// "pkgpath.Recv.Name" (the methodKey format).
	Key string
	// Pkg is the package declaring the function.
	Pkg *Package
	// Decl is the declaration (nil only for synthetic nodes).
	Decl *ast.FuncDecl
	// Calls are the outgoing edges, in source order.
	Calls []CallEdge
	// Noalloc reports whether the declaration carries the
	// //tgvet:noalloc contract directive.
	Noalloc bool
}

// CallGraph is the module-wide function index.
type CallGraph struct {
	// Funcs maps function keys to nodes.
	Funcs map[string]*FuncNode
	// Impls maps an interface method key ("pkg.Iface.Method") to the
	// keys of every module method that can stand behind it.
	Impls map[string][]string
}

// Module is the unit of an interprocedural run: the set of packages the
// analyzers see, plus the caches they share. Check builds a one-package
// module on the fly; Run builds one over every package in the module
// tree so call chains cross package boundaries.
type Module struct {
	pkgs   []*Package
	graph  *CallGraph
	allows map[*Package]allowSet
	taint  *taintFacts
}

// NewModule indexes pkgs for interprocedural analysis.
func NewModule(pkgs []*Package) *Module {
	return &Module{pkgs: pkgs}
}

// Packages returns the module's packages in load order.
func (m *Module) Packages() []*Package { return m.pkgs }

// allowsFor returns pkg's parsed suppression set, cached. The
// diagnostics for malformed annotations are reported by Check, not
// here; this accessor exists for analyzers that must know about
// sanctioned lines before the suppression filter runs (taint kills a
// whole chain at a sanctioned source).
func (m *Module) allowsFor(pkg *Package) allowSet {
	if m.allows == nil {
		m.allows = make(map[*Package]allowSet)
	}
	if s, ok := m.allows[pkg]; ok {
		return s
	}
	s, _ := parseAnnotations(pkg)
	m.allows[pkg] = s
	return s
}

// allowedAt reports whether file:line carries a //tgvet:allow for any
// of the named analyzers in pkg.
func (m *Module) allowedAt(pkg *Package, file string, line int, names ...string) bool {
	s := m.allowsFor(pkg)
	for _, n := range names {
		if s[file][line][n] {
			return true
		}
	}
	return false
}

// Graph builds (once) and returns the module call graph.
func (m *Module) Graph() *CallGraph {
	if m.graph != nil {
		return m.graph
	}
	g := &CallGraph{
		Funcs: make(map[string]*FuncNode),
		Impls: make(map[string][]string),
	}
	for _, pkg := range m.pkgs {
		g.indexPackage(pkg)
	}
	g.buildCHA(m.pkgs)
	m.graph = g
	return g
}

// funcKey renders a declared function's key from its type object,
// falling back to a position-qualified name when types are missing
// (lenient checking can drop objects in files poisoned by faked
// imports).
func funcKey(pkg *Package, decl *ast.FuncDecl) string {
	if obj, ok := pkg.Info.Defs[decl.Name]; ok && obj != nil {
		if k := methodKey(obj); k != "" {
			return k
		}
	}
	// Fallback: approximate the same format syntactically.
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return pkg.ImportPath + "." + name
}

// hasNoallocDirective reports whether the declaration's doc comment
// carries the //tgvet:noalloc contract marker.
func hasNoallocDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "tgvet:noalloc" {
			return true
		}
	}
	return false
}

// indexPackage adds pkg's function declarations and their edges.
func (g *CallGraph) indexPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := &FuncNode{
				Key:     funcKey(pkg, fd),
				Pkg:     pkg,
				Decl:    fd,
				Noalloc: hasNoallocDirective(fd),
			}
			collectEdges(pkg, fd.Body, node)
			// Two declarations can collide on the fallback key; keep the
			// first (deterministic: files and decls walk in order).
			if _, exists := g.Funcs[node.Key]; !exists {
				g.Funcs[node.Key] = node
			}
		}
	}
}

// collectEdges walks body recording static calls, CHA-resolvable
// interface calls (resolved later), and escaping function references.
func collectEdges(pkg *Package, body ast.Node, node *FuncNode) {
	info := pkg.Info
	// First pass: mark the name idents that are call operands, so the
	// reference pass below does not double-count plain calls.
	called := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			called[fun] = true
		case *ast.SelectorExpr:
			called[fun.Sel] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := calleeOf(info, n); obj != nil {
				if key := methodKey(obj); key != "" {
					kind := CallStatic
					if isInterfaceMethod(obj) {
						kind = CallDynamic
					}
					node.Calls = append(node.Calls, CallEdge{Callee: key, Pos: n.Pos(), Kind: kind})
				}
			}
			return true
		case *ast.Ident:
			if called[n] {
				return true
			}
			if refObj, ok := info.Uses[n]; ok {
				if _, isFn := refObj.(*types.Func); isFn {
					if key := methodKey(refObj); key != "" {
						node.Calls = append(node.Calls, CallEdge{Callee: key, Pos: n.Pos(), Kind: CallRef})
					}
				}
			}
		}
		return true
	})
}

// isInterfaceMethod reports whether obj is a method declared on an
// interface type.
func isInterfaceMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// buildCHA fills Impls: for every named interface in the module, every
// module type whose method set satisfies it contributes its methods as
// possible targets of the interface's methods.
func (g *CallGraph) buildCHA(pkgs []*Package) {
	type namedIface struct {
		key   string // "pkgpath.Name"
		iface *types.Interface
	}
	var ifaces []namedIface
	var concretes []types.Type
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted: deterministic
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, namedIface{key: pkg.ImportPath + "." + name, iface: iface})
			} else {
				concretes = append(concretes, named, types.NewPointer(named))
			}
		}
	}
	for _, ni := range ifaces {
		for _, ct := range concretes {
			if !types.Implements(ct, ni.iface) {
				continue
			}
			mset := types.NewMethodSet(ct)
			for i := 0; i < ni.iface.NumMethods(); i++ {
				m := ni.iface.Method(i)
				sel := mset.Lookup(m.Pkg(), m.Name())
				if sel == nil {
					continue
				}
				implKey := methodKey(sel.Obj())
				if implKey == "" {
					continue
				}
				ifaceMethodKey := ni.key + "." + m.Name()
				g.Impls[ifaceMethodKey] = appendUnique(g.Impls[ifaceMethodKey], implKey)
			}
		}
	}
	for k := range g.Impls {
		sort.Strings(g.Impls[k])
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// shortKey strips the module path prefix from a function key for
// human-readable chains ("internal/sim.Engine.At" instead of
// "telegraphos/internal/sim.Engine.At").
func shortKey(modPath, key string) string {
	if rest, ok := strings.CutPrefix(key, modPath+"/"); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(key, modPath+"."); ok {
		return rest
	}
	return key
}
