package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerMapOrder proves the iteration-order contract: no map is
// ranged over where the loop body has order-sensitive effects. Go
// randomizes map iteration order per run, so a loop that schedules
// events, emits packets or trace records, accumulates floating-point
// tallies, or appends to an outer slice in map order produces a
// different simulation every execution — the classic determinism
// heisenbug. Loops that only read or update commutative state are
// fine; loops whose output is sorted before use are annotated
// //tgvet:allow maporder(reason) on the line above the `for`.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration must not drive order-sensitive effects",
	Run:  runMapOrder,
}

// maporderSimEffects are sim-package methods that feed the scheduler or
// another entity: calling one in map order perturbs the event sequence.
var maporderSimEffects = map[string]string{
	"Engine.Schedule": "schedules an event", "Engine.At": "schedules an event",
	"Engine.Spawn": "spawns a process", "Engine.SpawnDaemon": "spawns a process",
	"Chan.Send": "sends a cross-shard message",
	"Queue.Put": "enqueues work", "Queue.TryPut": "enqueues work",
	"Semaphore.Acquire": "blocks on the scheduler", "Semaphore.Release": "wakes a waiter",
	"Mutex.Lock": "blocks on the scheduler", "Mutex.Unlock": "wakes a waiter",
	"Completion.Complete": "wakes waiters", "Completion.Wait": "blocks on the scheduler",
	"Future.Resolve": "wakes waiters", "Future.Wait": "blocks on the scheduler",
	"Proc.Sleep": "yields to the scheduler", "Proc.Yield": "yields to the scheduler",
}

// maporderEffects maps fully-qualified callees outside sim to what they
// perturb.
var maporderEffects = map[string]string{
	"telegraphos/internal/hib.HIB.Post":   "emits a packet",
	"telegraphos/internal/hib.HIB.Emit":   "emits a trace event",
	"telegraphos/internal/trace.EventLog.Append": "appends a trace event",
	"telegraphos/internal/stats.Tally.Add":       "accumulates an order-sensitive tally",
	"telegraphos/internal/stats.Series.Add":      "appends a series point",
}

// maporderFmtFuncs are the fmt output functions (Sprint* are pure).
var maporderFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if effect := mapOrderEffect(pass, rng); effect != "" {
				pass.Reportf(rng.For,
					"iteration over map %s %s: map order is nondeterministic per run — iterate a sorted key slice instead, or annotate //tgvet:allow maporder(reason) if order provably cannot matter",
					exprString(rng.X), effect)
			}
			return true
		})
	}
}

// mapOrderEffect scans the loop body (including nested literals — a
// closure built in map order usually runs in map order) for the first
// order-sensitive effect and describes it.
func mapOrderEffect(pass *Pass, rng *ast.RangeStmt) string {
	info := pass.Pkg.Info
	var effect string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = "sends on a channel"
			return false
		case *ast.CallExpr:
			// append to a variable declared outside the loop.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					if base, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := info.Uses[base]; obj != nil &&
							(obj.Pos() < rng.Pos() || obj.Pos() > rng.End()) {
							effect = fmt.Sprintf("appends to %q declared outside the loop", base.Name)
							return false
						}
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if importedPath(info, sel.X) == "fmt" && maporderFmtFuncs[sel.Sel.Name] {
					effect = "writes output via fmt." + sel.Sel.Name
					return false
				}
			}
			key := methodKey(calleeOf(info, n))
			if key == "" {
				return true
			}
			if rest, ok := cutPkg(key, "telegraphos/internal/sim"); ok {
				if what, hit := maporderSimEffects[rest]; hit {
					effect = what + " (sim." + rest + ")"
					return false
				}
			}
			if what, hit := maporderEffects[key]; hit {
				effect = what + " (" + key + ")"
				return false
			}
		}
		return true
	})
	return effect
}

// cutPkg strips a "pkgpath." prefix from a method key.
func cutPkg(key, pkg string) (string, bool) {
	if len(key) > len(pkg)+1 && key[:len(pkg)] == pkg && key[len(pkg)] == '.' {
		return key[len(pkg)+1:], true
	}
	return "", false
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return "expression"
	}
}
