// Package taint is golden testdata for the taint analyzer: the
// determinism contract is transitive, so a wall-clock or global-rand
// read one helper deep taints every caller — the blind spot the
// intraprocedural walltime/globalrand analyzers cannot see past.
package taint

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// hostStamp wraps the wall clock one call deep. The time.Now line is
// the walltime analyzer's finding, not taint's — taint owns the chains
// above it. (TestTaintCatchesWrappedWalltime pins down that walltime
// provably misses every caller of this function.)
func hostStamp() int64 {
	return time.Now().UnixNano()
}

func stepClock() int64 {
	return hostStamp() // want `transitively reaches nondeterministic source`
}

func twoDeep() int64 {
	return stepClock() // want `transitively reaches nondeterministic source \(.*taint\.twoDeep → .*taint\.stepClock → .*taint\.hostStamp → time\.Now at taint\.go:19\)`
}

// rollHost wraps the process-global RNG: globalrand's finding.
func rollHost() int {
	return rand.Intn(6)
}

func shuffle() int {
	return rollHost() // want `transitively reaches nondeterministic source`
}

// Sources with no dedicated analyzer are taint's own direct findings.
func readEnv() string {
	return os.Getenv("TG_SEED") // want `nondeterministic source os.Getenv in simulation code`
}

func hostWidth() int {
	return runtime.NumCPU() // want `nondeterministic source runtime.NumCPU in simulation code`
}

// Sanctioning at the source kills the whole chain: benchCaller is clean
// because the nondeterminism below it is declared genuine.
func benchStamp() int64 {
	return time.Now().UnixNano() //tgvet:allow walltime(host-side benchmark timing; sanctioned at the source, which also clears every caller)
}

func benchCaller() int64 {
	return benchStamp()
}

// Sanctioning an edge stops propagation through that call site only.
func edgeAllowed() int64 {
	return hostStamp() //tgvet:allow taint(wall-clock progress metering on the driver side; the callee stays flagged for everyone else)
}

// Calling a clean helper taints nothing.
func pureStep(x int64) int64 { return x * 2654435761 }

func cleanCaller() int64 {
	return pureStep(7)
}
