// Package globalrand is golden testdata for the globalrand analyzer:
// all randomness must flow through per-shard sim.RNG streams.
package globalrand

import (
	"math/rand"
	_ "math/rand/v2" // want "_ import of math/rand/v2"

	"telegraphos/internal/sim"
)

func roll() int {
	return rand.Intn(6) // want "global math/rand use \\(rand.Intn\\)"
}

var source = rand.New(rand.NewSource(7)) // want "rand.New" "rand.NewSource"

// The sanctioned path is not flagged.
func sanctioned(seed uint64) int {
	return sim.ForkRNG(seed, "testdata/globalrand").Intn(6)
}

// A declared escape hatch suppresses the diagnostic.
func suppressed() int {
	return rand.Int() //tgvet:allow globalrand(exercises the suppression path)
}
