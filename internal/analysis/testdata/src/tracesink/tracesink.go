// Package tracesink is golden testdata for the tracesink analyzer:
// HIB recorders must be built from internal/trace recorders, and a
// package in the trace pipeline must not touch the host filesystem
// outside the spill writer.
package tracesink

import (
	"os"

	"telegraphos/internal/hib"
	"telegraphos/internal/trace"
)

// The sanctioned wiring: straight from a trace log's Recorder method.
func installWindowed(h *hib.HIB, w *trace.WindowedLog, i int) {
	h.SetRecorder(w.Recorder(i))
}

func installSharded(h *hib.HIB, s *trace.ShardedLog, i int) {
	h.SetRecorder(s.Recorder(i))
}

// An ad-hoc closure: events it swallows never reach the merged stream.
func installRaw(h *hib.HIB) {
	h.SetRecorder(func(trace.Event) {}) // want "not built from a trace recorder"
}

// Disabling recording silently is the same hazard.
func installNil(h *hib.HIB) {
	h.SetRecorder(nil) // want "not built from a trace recorder"
}

// A tee is legitimate when declared.
func installTee(h *hib.HIB, w *trace.WindowedLog, s *trace.ShardedLog, i int) {
	stream, tee := w.Recorder(i), s.Recorder(i)
	//tgvet:allow tracesink(differential tee: forwards every event to both the streaming ring and the legacy log)
	h.SetRecorder(func(e trace.Event) { stream(e); tee(e) })
}

// This package imports internal/trace, so raw filesystem access is the
// spill writer's job.
func rawSpill(path string) error {
	f, err := os.Create(path) // want `os.Create touches the host filesystem`
	if err != nil {
		return err
	}
	return f.Close()
}

func rawRead(path string) {
	os.ReadFile(path) // want "os.ReadFile touches the host filesystem"
}

// Declared host I/O passes.
func declaredDump(path string, data []byte) {
	os.WriteFile(path, data, 0o644) //tgvet:allow tracesink(golden: declared debug dump outside the deterministic pipeline)
}
