// Package maporder is golden testdata for the maporder analyzer: map
// iteration must not drive order-sensitive effects.
package maporder

import (
	"fmt"

	"telegraphos/internal/sim"
)

func scheduleInMapOrder(eng *sim.Engine, timers map[int]sim.Time) {
	for _, d := range timers { // want "iteration over map timers schedules an event"
		ev := eng.Schedule(d, func() {})
		_ = ev
	}
}

func spawnInMapOrder(eng *sim.Engine, names map[string]bool) {
	for name := range names { // want "spawns a process"
		eng.Spawn(name, func(p *sim.Proc) {})
	}
}

func printInMapOrder(counts map[string]int) {
	for k, v := range counts { // want "writes output via fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func collectInMapOrder(set map[int]bool) []int {
	var keys []int
	for k := range set { // want `appends to "keys" declared outside the loop`
		keys = append(keys, k)
	}
	return keys
}

func sendInMapOrder(set map[int]bool, ch chan int) {
	for k := range set { // want "sends on a channel"
		ch <- k
	}
}

// Commutative aggregation in map order is fine: integer sums and local
// scratch state do not depend on iteration order.
func countInMapOrder(set map[int]bool) int {
	n := 0
	for k := range set {
		var scratch []int
		scratch = append(scratch, k)
		n += len(scratch)
	}
	return n
}

// Slices have a defined order: effects inside are fine.
func sendInSliceOrder(xs []int, ch chan int) {
	for _, x := range xs {
		ch <- x
	}
}

// The escape hatch declares collect-then-sort loops benign.
func sortedCollect(set map[int]bool) []int {
	var keys []int
	//tgvet:allow maporder(keys are sorted by the caller before any effect depends on them)
	for k := range set {
		keys = append(keys, k)
	}
	return keys
}
