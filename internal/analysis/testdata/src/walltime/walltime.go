// Package walltime is golden testdata for the walltime analyzer: the
// sim-time contract says simulation code never reads the host clock.
package walltime

import "time"

func simStep() {
	t0 := time.Now()             // want "wall-clock time.Now in simulation code"
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
	_ = time.Since(t0)           // want "wall-clock time.Since"
	_ = time.After(time.Second)  // want `wall-clock time\.After`
	tick := time.NewTicker(time.Second) // want "wall-clock time.NewTicker"
	tick.Stop()
}

// Durations and constants carry no hidden clock: not flagged.
var pollInterval = 5 * time.Millisecond

func convert(d time.Duration) float64 { return d.Seconds() }

// A declared escape hatch suppresses the diagnostic.
func benchStamp() time.Time {
	return time.Now() //tgvet:allow walltime(genuine host-side benchmark timing)
}

// A standalone annotation on the line above also covers the call.
func benchStamp2() time.Time {
	//tgvet:allow walltime(host-side measurement; exercises the standalone-comment path)
	return time.Now()
}
