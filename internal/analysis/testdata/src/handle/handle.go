// Package handle is golden testdata for the handle analyzer: pooled
// sim.Event handles are generation-checked tickets, and the analyzer
// proves their lifetime discipline — no use after Cancel, no
// double-Schedule over a live handle, no stores that outlive the firing
// round without a visible re-check.
package handle

import "telegraphos/internal/sim"

// Rule 1: use-after-Cancel within a straight-line sequence.

func useAfterCancel(eng *sim.Engine) sim.Time {
	ev := eng.Schedule(5, func() {})
	ev.Cancel()
	return ev.When() // want `use of event handle ev after Cancel`
}

func cancelThenLive(eng *sim.Engine) bool {
	ev := eng.Schedule(5, func() {})
	ev.Cancel()
	return ev.Live() // Live() on a dead handle is the sanctioned probe
}

func cancelIsIdempotent(eng *sim.Engine) {
	ev := eng.Schedule(5, func() {})
	ev.Cancel()
	ev.Cancel() // double-Cancel is a documented no-op
}

func reassignRevives(eng *sim.Engine) sim.Time {
	ev := eng.Schedule(5, func() {})
	ev.Cancel()
	ev = eng.Schedule(7, func() {})
	return ev.When() // fresh handle: clean
}

// Rule 2: overwriting a possibly-live handle leaks the first event.

func doubleSchedule(eng *sim.Engine) sim.Event {
	ev := eng.Schedule(5, func() {})
	ev = eng.Schedule(7, func() {}) // want `handle ev overwritten while possibly live`
	return ev
}

func cancelBetween(eng *sim.Engine) sim.Event {
	ev := eng.Schedule(5, func() {})
	ev.Cancel()
	ev = eng.Schedule(7, func() {}) // clean: the old event is dead
	return ev
}

func liveCheckBetween(eng *sim.Engine) sim.Event {
	ev := eng.Schedule(5, func() {})
	_ = ev.Live()
	ev = eng.Schedule(7, func() {}) // clean: the code inspected the old handle
	return ev
}

func allowedReschedule(eng *sim.Engine) sim.Event {
	ev := eng.Schedule(5, func() {})
	ev = eng.Schedule(7, func() {}) //tgvet:allow handle(the first timer always fires before this line in the protocol; rearming is intentional)
	return ev
}

// Rule 3: stores that outlive the firing round.

var pendingGlobal sim.Event

func storeGlobal(eng *sim.Engine) {
	pendingGlobal = eng.Schedule(5, func() {}) // want `event handle stored into package-level variable pendingGlobal`
}

type unchecked struct {
	timer sim.Event
}

func (u *unchecked) arm(eng *sim.Engine) {
	u.timer = eng.Schedule(5, func() {}) // want `event handle stored into field u.timer`
}

type disciplined struct {
	retx map[uint64]sim.Event
}

// armRetx stores into a field the package visibly Cancels: the timer
// map follows the Cancel-before-overwrite discipline, so rule 3 is
// satisfied.
func (d *disciplined) armRetx(eng *sim.Engine, seq uint64) {
	d.retx[seq].Cancel()
	d.retx[seq] = eng.Schedule(5, func() {})
}

// Local variables never outlive the round by themselves.
func localOnly(eng *sim.Engine) {
	ev := eng.Schedule(5, func() {})
	ev.Cancel()
}
