// Package noalloc is golden testdata for the noalloc analyzer: a
// //tgvet:noalloc doc directive promises a function allocates nothing
// in steady state, and the analyzer flags every construct that can
// reach the allocator — transitively through the call graph.
package noalloc

import "telegraphos/internal/sim"

type ring struct {
	buf  []int
	head int
	tag  string
}

// A clean hot-path function: indexing, arithmetic, calls to other
// noalloc functions.

//tgvet:noalloc
func (r *ring) at(i int) int {
	return r.buf[(r.head+i)%len(r.buf)]
}

//tgvet:noalloc
func (r *ring) second() int {
	return r.at(1)
}

// Direct allocation sites.

//tgvet:noalloc
func build(n int) []int {
	s := make([]int, n) // want `make in //tgvet:noalloc function allocates`
	p := new(ring)      // want `new in //tgvet:noalloc function allocates`
	_ = p
	s = append(s, 1) // want `append in //tgvet:noalloc function may grow`
	lit := []int{1, 2} // want `slice literal in //tgvet:noalloc function`
	m := map[int]int{} // want `map literal in //tgvet:noalloc function`
	m[3] = 4           // want `map assignment in //tgvet:noalloc function`
	rp := &ring{}      // want `address-taken composite literal`
	_ = rp
	_ = lit
	return s
}

// Amortized growth is declared where it happens.

//tgvet:noalloc
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) //tgvet:allow noalloc(amortized doubling; steady state reuses the backing array)
}

// Strings and conversions.

//tgvet:noalloc
func describe(r *ring, b []byte) string {
	s := r.tag + "!"   // want `string concatenation in //tgvet:noalloc function`
	s += "?"           // want `string concatenation in //tgvet:noalloc function`
	t := string(b)     // want `\[\]byte/\[\]rune-to-string conversion`
	bb := []byte(s)    // want `string-to-slice conversion`
	_ = bb
	return s + t // want `string concatenation in //tgvet:noalloc function`
}

// Closures, goroutines, defers.

//tgvet:noalloc
func control(r *ring) {
	f := func() {} // want `function literal in //tgvet:noalloc function`
	go f()         // want `go statement in //tgvet:noalloc function` `dynamic call through a function value`
	defer f()      // want `defer in //tgvet:noalloc function` `dynamic call through a function value`
	g := r.at      // want `bound method value r.at in //tgvet:noalloc function allocates a closure`
	_ = g
}

// Interface boxing: non-constant concrete values box; constants are
// static data and pass.

type anySink interface{ take(v interface{}) }

func plainSink(v interface{}) {}

//tgvet:noalloc
func box(r *ring, v int) interface{} {
	plainSink(v)   // want `callee is not marked //tgvet:noalloc` `argument boxes a concrete value`
	plainSink(42)  // want `callee is not marked //tgvet:noalloc`
	var i interface{} = v // no report: plain assignment conversion is out of scope here
	_ = i
	return v // want `return boxes a concrete value into interface result`
}

// The contract is transitive: calling an unmarked function fails even
// if that function happens to be clean today.

func cleanButUnmarked(x int) int { return x + 1 }

//tgvet:noalloc
func transitive(x int) int {
	return cleanButUnmarked(x) // want `callee is not marked //tgvet:noalloc \(the contract is transitive\)`
}

// Interface calls resolve through CHA: every module implementation
// must carry the contract.

type pusher interface{ push2(v int) }

type fastPusher struct{ n int }

//tgvet:noalloc
func (f *fastPusher) push2(v int) { f.n += v }

type slowPusher struct{ xs []int }

func (s *slowPusher) push2(v int) {
	s.xs = append(s.xs, v)
}

//tgvet:noalloc
func drain(p pusher) {
	p.push2(1) // want `implementation .*slowPusher.push2 is not marked //tgvet:noalloc`
}

type poker interface{ poke(v int) }

//tgvet:noalloc
func (f *fastPusher) poke(v int) { f.n -= v }

//tgvet:noalloc
func drainFast(p poker) {
	p.poke(2) // clean: the only implementation is marked
}

// Dynamic calls through function values cannot be proven.

//tgvet:noalloc
func dynamic(fn func(int) int) int {
	return fn(1) // want `dynamic call through a function value`
}

// Calls that leave the analyzed module cannot be proven either.

//tgvet:noalloc
func leaves(eng *sim.Engine) {
	_ = eng.Now() // want `leaves the analyzed module`
}

// Variadic calls materialize their argument slice.

func varia(xs ...int) {}

//tgvet:noalloc
func callVariadic(a, b int) {
	varia(a, b) // want `callee is not marked` `variadic call in //tgvet:noalloc function allocates its argument slice`
}

// Unannotated functions are never checked.
func freeForAll() []int {
	return append([]int{}, 1, 2, 3)
}
