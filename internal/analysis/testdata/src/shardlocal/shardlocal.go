// Package shardlocal is golden testdata for the shardlocal analyzer:
// blocking primitives stay in process bodies, goroutines stay inside
// the engine.
package shardlocal

import "telegraphos/internal/sim"

func blockInEventCallback(eng *sim.Engine, q *sim.Queue[int], p *sim.Proc) {
	eng.Schedule(5, func() {
		q.Put(p, 1) // want "blocking Queue.Put inside an event callback"
	})
}

func blockInCrossShardMessage(ch *sim.Chan, sem *sim.Semaphore, p *sim.Proc) {
	ch.Send(10, func() {
		sem.Acquire(p) // want "blocking Semaphore.Acquire"
	})
}

func sleepInAtCallback(eng *sim.Engine, p *sim.Proc) {
	eng.At(100, func() {
		p.Sleep(1) // want "blocking Proc.Sleep"
	})
}

// Non-blocking variants are legal in event context.
func tryInEventCallback(eng *sim.Engine, q *sim.Queue[int], sem *sim.Semaphore) {
	eng.Schedule(5, func() {
		q.TryPut(1)
		sem.Release()
	})
}

// Blocking from a process body is the sanctioned pattern.
func blockInProcessBody(eng *sim.Engine, q *sim.Queue[int]) {
	eng.Spawn("consumer", func(p *sim.Proc) {
		_ = q.Get(p)
	})
}

func rawGoroutine(done chan struct{}) {
	go close(done) // want "raw go statement in simulation code"
}

func allowedGoroutine(done chan struct{}) {
	//tgvet:allow shardlocal(exercises the suppression path for sanctioned launch sites)
	go close(done)
}
