// Package eventdrop is golden testdata for the eventdrop analyzer: a
// delayed *sim.Event handle must be kept so the timer can be cancelled.
package eventdrop

import "telegraphos/internal/sim"

func dropDelayed(eng *sim.Engine, d sim.Time) {
	eng.Schedule(d, func() {})     // want `\*sim.Event returned by Engine.Schedule is discarded`
	_ = eng.Schedule(d, func() {}) // want "Engine.Schedule is discarded"
	eng.At(42, func() {})          // want "Engine.At is discarded"
}

// Zero-delay wakeups fire within the current instant: nothing to
// cancel, so dropping them is fine.
func dropImmediate(eng *sim.Engine) {
	eng.Schedule(0, func() {})
}

// Keeping the handle is the sanctioned pattern.
func keep(eng *sim.Engine, d sim.Time) *sim.Event {
	return eng.Schedule(d, func() {})
}

func keepAndCancel(eng *sim.Engine, d sim.Time) {
	ev := eng.Schedule(d, func() {})
	ev.Cancel()
}

// The escape hatch declares always-firing one-shot timers.
func allowedDrop(eng *sim.Engine, d sim.Time) {
	eng.Schedule(d, func() {}) //tgvet:allow eventdrop(one-shot end-of-scenario timer that always fires)
}
