package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerTraceSink proves two hygiene rules of the streaming trace
// pipeline. First, every recorder installed on a HIB must be built from
// a trace recorder (a `Recorder` method of one of internal/trace's log
// types): an ad-hoc closure silently drops events from the canonical
// merged stream the checkers and the fingerprint consume, so a tee or
// filter must declare itself with //tgvet:allow tracesink(reason).
// Second, packages in the pipeline (internal/trace and its importers,
// cmd/* excluded) must not touch the host filesystem — paging windows
// to disk is the spill writer's job, and any other genuine host I/O
// (CI floor files, debug dumps) is declared with the same annotation.
var AnalyzerTraceSink = &Analyzer{
	Name: "tracesink",
	Doc:  "HIB recorders must feed the trace pipeline, and only the spill writer touches the filesystem",
	Run:  runTraceSink,
}

// tracesinkFSFuncs are the package os functions that touch the host
// filesystem. Environment reads (os.Getenv) and process plumbing are
// not flagged: they cannot corrupt or bypass the spill discipline.
var tracesinkFSFuncs = map[string]bool{
	"Create": true, "Open": true, "OpenFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"WriteFile": true, "ReadFile": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "CreateTemp": true,
}

func runTraceSink(pass *Pass) {
	info := pass.Pkg.Info
	fsScope := tracesinkFSScope(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if methodKey(calleeOf(info, call)) == "telegraphos/internal/hib.HIB.SetRecorder" &&
				len(call.Args) == 1 && !isTraceRecorderCall(info, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"recorder installed on a HIB is not built from a trace recorder: events it receives never reach the merged stream's sinks (checkers, fingerprint, spill) — pass a Recorder of an internal/trace log, or annotate the tee/filter //tgvet:allow tracesink(reason)")
			}
			if fsScope {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
					importedPath(info, sel.X) == "os" && tracesinkFSFuncs[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"os.%s touches the host filesystem from the trace pipeline: paging to disk is the TGE1 spill writer's job — go through trace.NewFileSpill, or declare genuine host I/O with //tgvet:allow tracesink(reason)",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// tracesinkFSScope reports whether the filesystem rule applies to pkg:
// internal/trace itself and every non-cmd package importing it.
func tracesinkFSScope(pkg *Package) bool {
	if strings.HasSuffix(pkg.ImportPath, "internal/trace") {
		return true
	}
	if strings.Contains(pkg.ImportPath, "/cmd/") || strings.HasPrefix(pkg.ImportPath, "cmd/") {
		return false
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "telegraphos/internal/trace" {
				return true
			}
		}
	}
	return false
}

// isTraceRecorderCall reports whether arg is a direct call to a
// `Recorder` method of a type declared in internal/trace (the sanctioned
// way to wire a HIB into the pipeline).
func isTraceRecorderCall(info *types.Info, arg ast.Expr) bool {
	c, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	key := methodKey(calleeOf(info, c))
	return strings.HasPrefix(key, "telegraphos/internal/trace.") &&
		strings.HasSuffix(key, ".Recorder")
}
