package experiments

import (
	"encoding/json"
	"io"
)

// jsonResult is the wire form of a Result.
type jsonResult struct {
	ID       string       `json:"id"`
	Title    string       `json:"title"`
	Artifact string       `json:"artifact"`
	Ok       bool         `json:"ok"`
	Rows     []jsonRow    `json:"rows"`
	Series   []jsonSeries `json:"series,omitempty"`
	Notes    string       `json:"notes,omitempty"`
}

type jsonRow struct {
	Name     string `json:"name"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
	Match    bool   `json:"match"`
}

type jsonSeries struct {
	Name   string       `json:"name"`
	XLabel string       `json:"x"`
	YLabel string       `json:"y"`
	Points [][2]float64 `json:"points"`
}

// WriteJSON encodes results as a JSON array (for dashboards/tooling).
func WriteJSON(w io.Writer, results []*Result) error {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		jr := jsonResult{ID: r.ID, Title: r.Title, Artifact: r.Artifact, Ok: r.Ok(), Notes: r.Notes}
		for _, row := range r.Rows {
			jr.Rows = append(jr.Rows, jsonRow(row))
		}
		for _, s := range r.Series {
			js := jsonSeries{Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel}
			for _, p := range s.Points {
				js.Points = append(js.Points, [2]float64{p.X, p.Y})
			}
			jr.Series = append(jr.Series, js)
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
