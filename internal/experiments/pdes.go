package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
	"telegraphos/internal/trace"
)

// The PDES scaling benchmark: a node-count × shard-count sweep over one
// fixed cluster workload, measuring how the sharded conservative engine
// scales. For every cell it reports wall-clock time, executed work items
// per second, and two speedups against the single-shard engine on the
// same workload:
//
//   - wall: measured wall-clock ratio — what this machine's cores
//     actually deliver;
//   - critical path: executed work divided by the round-structured
//     critical path (the busiest shard's work summed over barrier
//     rounds) — what an ideal machine with one core per shard and free
//     barriers would deliver. It is hardware-independent and isolates
//     the quality of the decomposition (lookahead width, load balance)
//     from the host's core count.
//
// The workload is a "campus" configuration: a chain of 4-port switches
// (the paper's multi-hop Telegraphos fabric) with 1 µs propagation
// links — longer runs than the 10 ns lab bench, and exactly the regime
// where conservative windows are wide enough to amortize barriers. Every
// node streams remote writes to its neighbor inside its own switch
// group with periodic fences, so traffic is mostly shard-local and the
// trunk links between switch groups carry the cross-shard coupling.

// PDESPoint is one cell of the sweep.
type PDESPoint struct {
	Nodes        int     `json:"nodes"`
	Shards       int     `json:"shards"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimMicros    float64 `json:"sim_us"`
	// SpeedupWall is wall(1 shard)/wall(this) for the same node count.
	SpeedupWall float64 `json:"speedup_wall"`
	// SpeedupCritPath is events/critical-path for this cell.
	SpeedupCritPath float64 `json:"speedup_critical_path"`
	// TraceHash and the residency fields are populated only when the
	// sweep runs with a trace window (tgbench -trace-window); the hash is
	// shard-invariant and TracePeak stays O(window), not O(TraceEvents).
	TraceHash   uint64 `json:"trace_hash,omitempty"`
	TraceEvents uint64 `json:"trace_events,omitempty"`
	TracePeak   int    `json:"trace_peak_resident,omitempty"`
}

// PDESReport is the full sweep, annotated with the host's parallelism so
// wall-clock numbers can be read in context.
type PDESReport struct {
	CPUs       int         `json:"cpus"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	OpsPerNode int         `json:"ops_per_node"`
	Points     []PDESPoint `json:"points"`
}

// PDESOps is the default per-node remote-write count for the sweep.
const PDESOps = 1500

// pdesCluster builds the campus-configuration cluster for the bench.
func pdesCluster(nodes, shards int) *core.Cluster {
	cfg := params.Default(nodes)
	cfg.Seed = baseSeed
	cfg.Sizing.MemBytes = 1 << 21
	cfg.Topology = "chain"
	cfg.ChainPerSwitch = 4
	cfg.Link.PropDelay = 1 * sim.Microsecond
	cfg.Shards = shards
	cfg.PerMessageDelivery = perMessage
	return core.New(cfg)
}

// pdesTrace is the per-cell streaming trace measurement (zero when the
// sweep runs untraced).
type pdesTrace struct {
	hash   uint64
	events uint64
	peak   int
}

// pdesRun executes the workload on nodes×shards and reports wall time,
// executed work, critical path, and final simulated time.
func pdesRun(nodes, shards, ops int) (wall time.Duration, events, critPath uint64, simTime sim.Time, tr pdesTrace) {
	c := pdesCluster(nodes, shards)
	var w *trace.WindowedLog
	if traceWindow > 0 {
		w = trace.NewWindowedLog(nodes, traceWindow)
		c.AttachTrace(w)
	}
	group := c.Cfg.ChainPerSwitch
	// One shared word homed on every node; node i streams writes to the
	// next node in its own switch group (wrapping inside the group).
	vas := make([]addrspace.VAddr, nodes)
	for i := 0; i < nodes; i++ {
		vas[i] = c.AllocShared(c.Nodes[i].ID, 8)
	}
	for i := 0; i < nodes; i++ {
		i := i
		partner := (i/group)*group + (i+1)%group
		if partner >= nodes {
			partner = (i / group) * group
		}
		target := vas[partner]
		c.Spawn(i, fmt.Sprintf("pdes%d", i), func(ctx *cpu.Ctx) {
			for k := 0; k < ops; k++ {
				ctx.Store(target, uint64(k+1))
				if k%64 == 63 {
					ctx.Fence()
				}
			}
			ctx.Fence()
		})
	}
	start := time.Now() //tgvet:allow walltime(PDES bench measures real host wall-clock, not simulated time)
	if err := c.Run(); err != nil {
		panic(err)
	}
	wall = time.Since(start) //tgvet:allow walltime(host-side wall-clock measurement paired with the start stamp above)
	if w != nil {
		w.DrainAll()
		tr = pdesTrace{hash: w.Hash(), events: w.Merged(), peak: w.MaxResident()}
	}
	return wall, c.Group.Executed(), c.Group.CritPath(), c.Group.Now(), tr
}

// PDESSweep runs the node-count × shard-count grid. Within one node
// count every shard count must execute identical work and reach the
// identical final simulated time (the determinism contract); the sweep
// panics if they diverge.
func PDESSweep(nodeCounts, shardCounts []int, ops int) *PDESReport {
	rep := &PDESReport{
		CPUs:       runtime.NumCPU(),      //tgvet:allow taint(host metadata for the report banner; never feeds simulation state)
		GOMAXPROCS: runtime.GOMAXPROCS(0), //tgvet:allow taint(host metadata for the report banner; never feeds simulation state)
		OpsPerNode: ops,
	}
	for _, n := range nodeCounts {
		var baseWall time.Duration
		var baseEvents uint64
		var baseSim sim.Time
		var baseTrace pdesTrace
		for _, s := range shardCounts {
			if s > n {
				continue
			}
			wall, events, crit, simT, tr := pdesRun(n, s, ops)
			if s == shardCounts[0] {
				baseWall, baseEvents, baseSim, baseTrace = wall, events, simT, tr
			} else if events != baseEvents || simT != baseSim {
				panic(fmt.Sprintf("pdes: %d nodes: shards=%d executed (%d items, %v) but shards=%d executed (%d items, %v)",
					n, shardCounts[0], baseEvents, baseSim, s, events, simT))
			} else if tr.hash != baseTrace.hash || tr.events != baseTrace.events {
				panic(fmt.Sprintf("pdes: %d nodes: trace fingerprint diverged across shards (%d shards: hash %#x over %d events; %d shards: hash %#x over %d events)",
					n, shardCounts[0], baseTrace.hash, baseTrace.events, s, tr.hash, tr.events))
			}
			rep.Points = append(rep.Points, PDESPoint{
				Nodes:           n,
				Shards:          s,
				WallMS:          float64(wall.Microseconds()) / 1e3,
				Events:          events,
				EventsPerSec:    float64(events) / wall.Seconds(),
				SimMicros:       simT.Micros(),
				SpeedupWall:     float64(baseWall) / float64(wall),
				SpeedupCritPath: float64(events) / float64(crit),
				TraceHash:       tr.hash,
				TraceEvents:     tr.events,
				TracePeak:       tr.peak,
			})
		}
	}
	return rep
}

// WritePDESJSON serializes the report (stable field order, indented).
func WritePDESJSON(w io.Writer, rep *PDESReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatPDES renders the sweep as an aligned text table.
func FormatPDES(rep *PDESReport) string {
	out := fmt.Sprintf("PDES scaling sweep (%d CPUs, GOMAXPROCS=%d, %d ops/node)\n",
		rep.CPUs, rep.GOMAXPROCS, rep.OpsPerNode)
	out += fmt.Sprintf("%6s %7s %10s %14s %10s %12s %10s\n",
		"nodes", "shards", "wall_ms", "events/s", "sim_us", "speedup", "critpath")
	for _, p := range rep.Points {
		out += fmt.Sprintf("%6d %7d %10.1f %14.0f %10.0f %11.2fx %9.2fx\n",
			p.Nodes, p.Shards, p.WallMS, p.EventsPerSec, p.SimMicros, p.SpeedupWall, p.SpeedupCritPath)
	}
	for _, p := range rep.Points {
		if p.TraceEvents > 0 {
			out += fmt.Sprintf("  trace %d×%d: %d events, hash %#016x, peak resident %d (window-bounded)\n",
				p.Nodes, p.Shards, p.TraceEvents, p.TraceHash, p.TracePeak)
		}
	}
	return out
}
