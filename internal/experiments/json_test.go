package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"telegraphos/internal/stats"
)

func TestWriteJSONRoundTrips(t *testing.T) {
	s := stats.Series{Name: "sweep", XLabel: "x", YLabel: "y"}
	s.Add(1, 2)
	s.Add(3, 4)
	in := []*Result{{
		ID: "EX", Title: "demo", Artifact: "none",
		Rows:   []Row{{Name: "r", Paper: "p", Measured: "m", Match: true}},
		Series: []stats.Series{s},
		Notes:  "n",
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	r := out[0]
	if r["id"] != "EX" || r["ok"] != true || r["notes"] != "n" {
		t.Fatalf("fields wrong: %v", r)
	}
	rows := r["rows"].([]interface{})
	if len(rows) != 1 || rows[0].(map[string]interface{})["measured"] != "m" {
		t.Fatalf("rows wrong: %v", rows)
	}
	series := r["series"].([]interface{})
	pts := series[0].(map[string]interface{})["points"].([]interface{})
	if len(pts) != 2 {
		t.Fatalf("points wrong: %v", pts)
	}
}

func TestWriteJSONRealExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Result{E3GateCount()}); err != nil {
		t.Fatal(err)
	}
	var out []jsonResult
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out[0].ID != "E3" || !out[0].Ok {
		t.Fatalf("E3 JSON wrong: %+v", out[0])
	}
}
