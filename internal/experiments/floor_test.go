package experiments

import (
	"os"
	"testing"
	"time"
)

// floorPath is where `make bench` records the gate (repo root, next to
// BENCH_pdes.json).
const floorPath = "../../BENCH_pdes.floor"

// BenchmarkPDESThroughputFloor is the CI throughput smoke scripts/check.sh
// runs (with -benchtime 3x): it replays the floor's workload single-shard
// and fails if the best iteration stays below the recorded floor after
// slow-host scaling. Regenerate the floor with `make bench` after an
// intentional performance change.
func BenchmarkPDESThroughputFloor(b *testing.B) {
	floor, err := ReadFloor(floorPath)
	if err != nil {
		if os.IsNotExist(err) {
			b.Skipf("no recorded floor at %s (run `make bench`)", floorPath)
		}
		b.Fatalf("reading floor: %v", err)
	}
	scaled := floor.Scaled(RefSpin())
	best := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wall, events, _, _, _ := pdesRun(floor.Nodes, 1, floor.OpsPerNode)
		if evps := float64(events) / wall.Seconds(); evps > best {
			best = evps
		}
	}
	b.ReportMetric(best, "events/sec")
	if best < scaled {
		b.Fatalf("single-shard throughput regressed: best %.0f events/sec < floor %.0f (recorded %.0f, slow-host scaled)",
			best, scaled, floor.MinEventsPerSec)
	}
}

// TestFloorScaling pins the slow-host guard arithmetic.
func TestFloorScaling(t *testing.T) {
	f := &ThroughputFloor{MinEventsPerSec: 1000, RefSpinNS: 100}
	if got := f.Scaled(100 * time.Nanosecond); got != 1000 {
		t.Errorf("equal-speed host: floor %v, want 1000", got)
	}
	if got := f.Scaled(200 * time.Nanosecond); got != 500 {
		t.Errorf("half-speed host: floor %v, want 500", got)
	}
	if got := f.Scaled(50 * time.Nanosecond); got != 1000 {
		t.Errorf("faster host must not raise the floor: got %v, want 1000", got)
	}
	if got := (&ThroughputFloor{MinEventsPerSec: 7}).Scaled(0); got != 7 {
		t.Errorf("unset calibration falls back to the raw floor: got %v", got)
	}
}

// TestFloorRoundTrip pins the floor file format.
func TestFloorRoundTrip(t *testing.T) {
	path := t.TempDir() + "/floor.json"
	want := &ThroughputFloor{Nodes: 8, OpsPerNode: 1500, MinEventsPerSec: 2.5e6, RefSpinNS: 42, Note: "x"}
	if err := WriteFloor(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFloor(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}
