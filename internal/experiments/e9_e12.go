package experiments

import (
	"fmt"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/coherence"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/dsm"
	"telegraphos/internal/hib"
	"telegraphos/internal/msg"
	"telegraphos/internal/osmodel"
	"telegraphos/internal/packet"
	"telegraphos/internal/paging"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
	"telegraphos/internal/stats"
	"telegraphos/internal/tsync"
	"telegraphos/internal/workload"
)

// lightClusterWithCAM builds a cluster with a specific counter-CAM size.
func lightClusterWithCAM(n, cam int) *core.Cluster {
	cfg := params.Default(n)
	cfg.Seed = baseSeed
	cfg.Sizing.MemBytes = 1 << 21
	cfg.Sizing.CounterCacheSize = cam
	cfg.Shards = shardCount
	cfg.PerMessageDelivery = perMessage
	return core.New(cfg)
}

// E9AlarmReplication measures the §2.2.6 claim (and [22]): page-access-
// counter alarms let the OS replicate exactly the pages that are hot,
// beating both never-replicate and replicate-on-first-touch on a mixed
// workload where some remote pages are read a few times and others
// hundreds of times.
func E9AlarmReplication() *Result {
	// Workload: node 1 reads 8 remote pages homed on node 0; pages 0-5
	// are cold (4 reads each), pages 6-7 are hot (150 reads each).
	reads := []int{4, 4, 4, 4, 4, 4, 150, 150}

	run := func(policy string, threshold uint32) sim.Time {
		c := lightCluster(2)
		ps := c.PageSize()
		bases := make([]addrspace.VAddr, len(reads))
		for i := range bases {
			bases[i] = c.AllocShared(0, ps)
		}
		n1 := c.Nodes[1]
		replicate := func(p *sim.Proc, va addrspace.VAddr) {
			// OS-level replication: hardware page copy, then remap.
			off := c.SharedOffset(va)
			base := off / uint64(ps) * uint64(ps)
			words := ps / addrspace.WordSize
			n1.HIB.AddOutstanding(1)
			n1.HIB.Post(p, &packet.Packet{
				Type:   packet.CopyReq,
				Dst:    0,
				Addr:   addrspace.NewGAddr(0, base),
				Addr2:  addrspace.NewGAddr(1, base),
				Origin: 1,
				Len:    uint32(words),
			})
			n1.HIB.Fence(p)
			c.RemapShared(1, va, 1)
		}
		if policy == "alarm" {
			for _, va := range bases {
				gp := addrspace.GPageOf(c.SharedGAddr(va), ps)
				n1.HIB.SetPageCounter(gp, threshold, 0)
			}
			n1.OS.SetInterruptHandler(osmodel.IntrPageCounter, func(p *sim.Proc, arg uint64) {
				gp, _ := hib.DecodePageArg(arg)
				va := core.SharedVA(addrspace.PageBase(gp.Page, ps))
				replicate(p, va)
			})
		}
		var elapsed sim.Time
		c.Spawn(1, "reader", func(ctx *cpu.Ctx) {
			start := ctx.Now()
			if policy == "always" {
				for _, va := range bases {
					replicate(ctx.P, va)
				}
			}
			for round := 0; round < 150; round++ {
				for pg, n := range reads {
					if round < n {
						_ = ctx.Load(bases[pg] + addrspace.VAddr(8*(round%32)))
					}
				}
			}
			elapsed = ctx.Now() - start
		})
		settle(c)
		return elapsed
	}

	never := run("never", 0)
	always := run("always", 0)
	alarm := run("alarm", 8) // alarm after 8 remote reads
	best := alarm < never && alarm < always
	return &Result{
		ID:       "E9",
		Title:    "Alarm-based replication via page access counters",
		Artifact: "§2.2.6 / [22]",
		Rows: []Row{
			{Name: "Never replicate", Paper: "hot pages pay remote reads forever",
				Measured: never.String(), Match: true},
			{Name: "Replicate on first touch", Paper: "cold pages waste page copies",
				Measured: always.String(), Match: true},
			{Name: "Counter alarm (threshold 8)", Paper: "beats both",
				Measured: alarm.String(), Match: best},
		},
	}
}

// E10RemotePaging reproduces the [21] study: paging to a memory server
// over Telegraphos vs paging to disk, across memory pressures.
func E10RemotePaging() *Result {
	series := stats.Series{Name: "E10: paging slowdown vs local memory fraction", XLabel: "local_frames", YLabel: "disk_over_remote"}
	var ratioAt8 float64
	for _, frames := range []int{4, 8, 16, 24} {
		refs := paging.GenRefs(10+baseSeed, 300, 32, 0.7, 0.3)
		run := func(b paging.Backend) sim.Time {
			cfg := params.Default(2)
			cfg.Seed = baseSeed
			cfg.Sizing.MemBytes = 1 << 21
			cfg.Sizing.PageSize = 4096
			cfg.Shards = shardCount
			cfg.PerMessageDelivery = perMessage
			c := core.New(cfg)
			res, err := paging.Run(c, 0, paging.Config{LocalFrames: frames, Backend: b, Server: 1}, refs)
			if err != nil {
				panic(err)
			}
			return res.Elapsed
		}
		disk := run(paging.Disk)
		remote := run(paging.RemoteMemory)
		ratio := float64(disk) / float64(remote)
		series.Add(float64(frames), ratio)
		if frames == 8 {
			ratioAt8 = ratio
		}
	}
	return &Result{
		ID:       "E10",
		Title:    "Remote-memory paging vs disk paging",
		Artifact: "§2.2.6 / [21]",
		Rows: []Row{
			{Name: "Disk/remote slowdown (8 frames)", Paper: "order of magnitude",
				Measured: fmt.Sprintf("%.0fx", ratioAt8), Match: ratioAt8 > 10},
		},
		Series: []stats.Series{series},
	}
}

// E11Substrates runs the producer/consumer kernel over every
// communication substrate the paper discusses: Telegraphos shared memory
// with update coherence, Telegraphos without replication (pure remote
// reads), the software DSM, user-level channels, and OS-mediated message
// passing. Who wins, and by what factor, is the paper's whole argument.
func E11Substrates() *Result {
	const n, words, iters = 2, 64, 4

	tgUpdate := func() sim.Time {
		c := lightCluster(n)
		u := coherence.NewUpdate(c, coherence.CountersInfinite)
		base := c.AllocShared(0, 8*words)
		u.SharePage(base, 0, []int{0, 1})
		bar := tsync.NewBarrier(c, 0, n)
		for i := 0; i < n; i++ {
			i := i
			w := bar.Participant()
			c.Spawn(i, "k", func(ctx *cpu.Ctx) {
				workload.ProducerConsumer(&workload.TGMem{Ctx: ctx, Base: base, Bar: w, Rank: i, Size: n}, words, iters)
			})
		}
		settle(c)
		return c.Eng.Now()
	}()

	tgRemote := func() sim.Time {
		c := lightCluster(n)
		base := c.AllocShared(0, 8*words) // no replication: consumers read remotely
		bar := tsync.NewBarrier(c, 0, n)
		for i := 0; i < n; i++ {
			i := i
			w := bar.Participant()
			c.Spawn(i, "k", func(ctx *cpu.Ctx) {
				workload.ProducerConsumer(&workload.TGMem{Ctx: ctx, Base: base, Bar: w, Rank: i, Size: n}, words, iters)
			})
		}
		settle(c)
		return c.Eng.Now()
	}()

	vsm := func() sim.Time {
		c := lightCluster(n)
		sys := msg.NewSystem(c)
		d := dsm.New(c, sys)
		base := c.AllocShared(0, 8*words)
		d.SharePage(base)
		bar := msg.NewRPCBarrier(sys, 0, n)
		for i := 0; i < n; i++ {
			i := i
			c.Spawn(i, "k", func(ctx *cpu.Ctx) {
				workload.ProducerConsumer(&workload.DSMMem{Ctx: ctx, Base: base, Bar: bar, Rank: i, Size: n}, words, iters)
			})
		}
		settle(c)
		return c.Eng.Now()
	}()

	channel := func() sim.Time {
		cfg := params.Default(n)
		cfg.Seed = baseSeed
		cfg.Sizing.MemBytes = 1 << 21
		cfg.Placement = params.SharedInMain
		cfg.Shards = shardCount
		cfg.PerMessageDelivery = perMessage
		c := core.New(cfg)
		ch := msg.NewChannel(c, 1, 2*words)
		c.Spawn(0, "p", func(ctx *cpu.Ctx) {
			buf := make([]uint64, words)
			for it := 0; it < iters; it++ {
				for w := range buf {
					ctx.Compute(workload.ComputeGrain)
					buf[w] = uint64(it*1000 + w)
				}
				ch.Send(ctx, buf)
			}
		})
		c.Spawn(1, "c", func(ctx *cpu.Ctx) {
			for it := 0; it < iters; it++ {
				ch.Recv(ctx, words)
			}
		})
		settle(c)
		return c.Eng.Now()
	}()

	osMsg := func() sim.Time {
		c := lightCluster(n)
		sys := msg.NewSystem(c)
		c.Spawn(0, "p", func(ctx *cpu.Ctx) {
			buf := make([]uint64, words)
			for it := 0; it < iters; it++ {
				for w := range buf {
					ctx.Compute(workload.ComputeGrain)
					buf[w] = uint64(it*1000 + w)
				}
				sys.Send(ctx, 1, 5, buf)
			}
		})
		c.Spawn(1, "c", func(ctx *cpu.Ctx) {
			for it := 0; it < iters; it++ {
				sys.Recv(ctx, 5)
			}
		})
		settle(c)
		return c.Eng.Now()
	}()

	f := func(t sim.Time) string { return fmt.Sprintf("%v (%.1fx vs VSM)", t, float64(vsm)/float64(t)) }
	return &Result{
		ID:       "E11",
		Title:    "Producer/consumer across substrates",
		Artifact: "§1/§2.1 motivation",
		Rows: []Row{
			{Name: "Telegraphos + update coherence", Paper: "fastest shared-memory path",
				Measured: f(tgUpdate), Match: tgUpdate < vsm},
			{Name: "Telegraphos remote reads (no replication)", Paper: "beats VSM",
				Measured: f(tgRemote), Match: tgRemote < vsm},
			{Name: "User-level channel (remote writes)", Paper: "message passing at memory speed",
				Measured: f(channel), Match: channel < vsm && channel < osMsg},
			{Name: "Software VSM (page faults + OS msgs)", Paper: "baseline",
				Measured: vsm.String(), Match: true},
			{Name: "OS-mediated message passing", Paper: "slow (traps per message)",
				Measured: f(osMsg), Match: osMsg > channel},
		},
	}
}

// E12UpdateVsInvalidate reproduces §2.3.6: update-based coherence wins
// for producer/consumer communication; invalidate wins for migratory
// sharing. Telegraphos's point is to provide the mechanisms and let
// software choose.
func E12UpdateVsInvalidate() *Result {
	// The traffic asymmetry that decides the winner: per iteration,
	// update-based coherence moves (written words × copies) while
	// invalidate moves (whole pages × new readers).
	//
	//   - producer/consumer touching a small part of a page: update
	//     pushes only the written words, invalidate ships whole pages;
	//   - migratory rewriting most of a page: update pushes every write
	//     to every copy (which nobody reads before it is overwritten),
	//     invalidate moves the page exactly once per hand-off.
	const n = 4
	const pcWords, migWords, iters = 64, 512, 4

	run := func(proto string, words int, kernel func(m workload.Mem) uint64) sim.Time {
		cfg := params.Default(n)
		cfg.Seed = baseSeed
		cfg.Sizing.MemBytes = 1 << 21
		cfg.Shards = shardCount
		cfg.PerMessageDelivery = perMessage
		if proto != "update" {
			// The invalidate baseline models its directory as centralized
			// hardware state, which only a single-shard cluster can host.
			cfg.Shards = 1
		}
		c := core.New(cfg)
		base := func() addrspace.VAddr {
			b := c.AllocShared(0, 8*words)
			switch proto {
			case "update":
				u := coherence.NewUpdate(c, coherence.CountersInfinite)
				u.SharePage(b, 0, []int{0, 1, 2, 3})
			default:
				iv := coherence.NewInvalidate(c)
				iv.SharePage(b)
			}
			return b
		}()
		bar := tsync.NewBarrier(c, 0, n)
		for i := 0; i < n; i++ {
			i := i
			w := bar.Participant()
			c.Spawn(i, "k", func(ctx *cpu.Ctx) {
				kernel(&workload.TGMem{Ctx: ctx, Base: base, Bar: w, Rank: i, Size: n})
			})
		}
		settle(c)
		return c.Eng.Now()
	}

	pcU := run("update", pcWords, func(m workload.Mem) uint64 { return workload.ProducerConsumer(m, pcWords, iters) })
	pcI := run("invalidate", pcWords, func(m workload.Mem) uint64 { return workload.ProducerConsumer(m, pcWords, iters) })
	migU := run("update", migWords, func(m workload.Mem) uint64 { return workload.Migratory(m, migWords, iters) })
	migI := run("invalidate", migWords, func(m workload.Mem) uint64 { return workload.Migratory(m, migWords, iters) })

	return &Result{
		ID:       "E12",
		Title:    "Update vs invalidate coherence by sharing pattern",
		Artifact: "§2.3.6",
		Rows: []Row{
			{Name: "Producer/consumer", Paper: "update wins (eager data push)",
				Measured: fmt.Sprintf("update %v vs invalidate %v", pcU, pcI), Match: pcU < pcI},
			{Name: "Migratory", Paper: "invalidate wins (no wasted updates)",
				Measured: fmt.Sprintf("update %v vs invalidate %v", migU, migI), Match: migI < migU},
		},
		Notes: "Telegraphos provides both mechanisms and leaves the policy to software",
	}
}
