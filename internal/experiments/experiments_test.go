package experiments

import (
	"strings"
	"testing"
)

// TestEveryExperimentMatchesPaperShape is the repository's headline test:
// each experiment must reproduce the shape of its paper artifact.
func TestEveryExperimentMatchesPaperShape(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r := Get(id)()
			if r.ID != id {
				t.Fatalf("runner returned id %q", r.ID)
			}
			for _, row := range r.Rows {
				if !row.Match {
					t.Errorf("%s: %s — paper %q, measured %q", id, row.Name, row.Paper, row.Measured)
				}
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 {
		t.Fatalf("registry holds %d experiments, want 16", len(ids))
	}
	if ids[0] != "E1" || ids[15] != "E16" {
		t.Fatalf("ordering wrong: %v", ids)
	}
	if Get("E99") != nil {
		t.Fatal("unknown id should return nil")
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{
		ID: "EX", Title: "demo", Artifact: "none",
		Rows:  []Row{{Name: "a", Paper: "1", Measured: "2", Match: false}},
		Notes: "hello",
	}
	out := r.Format()
	for _, want := range []string{"EX", "demo", "MISMATCH", "hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if r.Ok() {
		t.Fatal("Ok() with a mismatched row")
	}
}
