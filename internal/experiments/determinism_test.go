package experiments

import (
	"bytes"
	"testing"
)

// TestExperimentsDeterministic runs the full E1–E14 pipeline twice with
// the same base seed and requires bit-identical serialized results: every
// measured number, every series point, every matched row. Combined with
// simtest's trace-hash test this pins down the repo's determinism story
// end to end — any hidden real-time, map-order, or math/rand dependency
// shows up here as a diff.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	run := func() []byte {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, RunAll()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	SetSeed(1)
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs with the same seed differ:\nrun1: %d bytes\nrun2: %d bytes\nfirst divergence at byte %d",
			len(a), len(b), firstDiff(a, b))
	}

	// A different seed must still produce valid (matching) experiments —
	// the paper's shapes are seed-independent.
	SetSeed(7)
	defer SetSeed(1)
	for _, r := range RunAll() {
		if !r.Ok() {
			t.Errorf("%s does not match the paper's shape under seed 7", r.ID)
		}
	}
}

// TestExperimentsShardInvariant runs the full pipeline on 1, 2, 4, and 8
// simulation shards, with batched and per-message barrier delivery, and
// requires bit-identical serialized results: the sharded engine may only
// change wall-clock time, never a measurement. Run it with -cpu 1,4
// (scripts/check.sh does) to also prove the results do not depend on how
// many OS threads the shard workers share.
func TestExperimentsShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite many times")
	}
	run := func(shards int, perMsg bool) []byte {
		SetShards(shards)
		SetPerMessageDelivery(perMsg)
		defer func() {
			SetShards(1)
			SetPerMessageDelivery(false)
		}()
		var buf bytes.Buffer
		if err := WriteJSON(&buf, RunAll()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	SetSeed(1)
	base := run(1, false)
	for _, shards := range []int{2, 4, 8} {
		for _, perMsg := range []bool{false, true} {
			got := run(shards, perMsg)
			if !bytes.Equal(got, base) {
				t.Fatalf("shards=%d permsg=%v diverges from shards=1:\nshards=1: %d bytes\nvariant: %d bytes\nfirst divergence at byte %d",
					shards, perMsg, len(base), len(got), firstDiff(base, got))
			}
		}
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
