// Package experiments reproduces every quantitative artifact of the
// paper's evaluation and turns each qualitative protocol claim into a
// measured experiment. The experiment index (E1–E15) is documented in
// DESIGN.md; EXPERIMENTS.md records paper-vs-measured results.
//
// Each experiment is a pure function returning a Result; cmd/tgbench
// prints them and bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"telegraphos/internal/stats"
)

// baseSeed seeds every cluster and engine the experiments build. The
// whole pipeline is deterministic: two runs with the same base seed
// produce bit-identical results (determinism_test.go pins this down).
var baseSeed int64 = 1

// SetSeed overrides the base seed used by every experiment.
func SetSeed(s int64) { baseSeed = s }

// Seed reports the experiments' current base seed.
func Seed() int64 { return baseSeed }

// shardCount is the number of simulation shards every experiment cluster
// runs on. Results are bit-identical for any value (clusters clamp it to
// their node count); it only changes wall-clock time.
var shardCount = 1

// SetShards overrides the shard count used by every experiment cluster.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	shardCount = n
}

// Shards reports the experiments' current shard count.
func Shards() int { return shardCount }

// perMessage selects legacy per-message barrier delivery instead of
// batched slice hand-off. Results are bit-identical either way (the
// invariance tests prove it); only wall-clock time changes.
var perMessage = false

// SetPerMessageDelivery overrides the barrier delivery mode used by
// every experiment cluster.
func SetPerMessageDelivery(on bool) { perMessage = on }

// PerMessageDelivery reports the current barrier delivery mode.
func PerMessageDelivery() bool { return perMessage }

// traceWindow, when positive, attaches the streaming trace pipeline
// (trace.WindowedLog with this per-node ring capacity) to the PDES sweep
// clusters, so the sweep also measures recording overhead, the
// shard-invariant fingerprint, and peak trace residency. Zero (the
// default) runs the sweep untraced, exactly as before.
var traceWindow = 0

// SetTraceWindow overrides the PDES sweep's trace window (0 disables
// tracing).
func SetTraceWindow(n int) {
	if n < 0 {
		n = 0
	}
	traceWindow = n
}

// TraceWindow reports the current PDES trace window (0 = untraced).
func TraceWindow() int { return traceWindow }

// Row is one paper-vs-measured comparison line.
type Row struct {
	Name     string
	Paper    string // what the paper reports (or claims)
	Measured string // what this reproduction measures
	Match    bool   // does the shape hold?
}

// Result is one experiment's outcome.
type Result struct {
	ID       string
	Title    string
	Artifact string // which table/figure/section it reproduces
	Rows     []Row
	Series   []stats.Series // parameter sweeps, if any
	Notes    string
}

// Ok reports whether every row matched.
func (r *Result) Ok() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Format renders the result as text.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s  [%s]\n", r.ID, r.Title, r.Artifact)
	if len(r.Rows) > 0 {
		w := 0
		for _, row := range r.Rows {
			w = max(w, len(row.Name))
		}
		for _, row := range r.Rows {
			mark := "ok"
			if !row.Match {
				mark = "MISMATCH"
			}
			fmt.Fprintf(&b, "  %-*s  paper: %-28s measured: %-28s %s\n", w, row.Name, row.Paper, row.Measured, mark)
		}
	}
	for _, s := range r.Series {
		b.WriteString(indent(s.Format(), "  "))
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", r.Notes)
	}
	return b.String()
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// Runner produces one experiment result.
type Runner func() *Result

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"E1":  E1Latency,
	"E2":  E2WriteBatch,
	"E3":  E3GateCount,
	"E4":  E4OwnerSerialization,
	"E5":  E5CounterAnomalies,
	"E6":  E6CounterCacheSweep,
	"E7":  E7FenceConsistency,
	"E8":  E8GalacticaAnomaly,
	"E9":  E9AlarmReplication,
	"E10": E10RemotePaging,
	"E11": E11Substrates,
	"E12": E12UpdateVsInvalidate,
	"E13": E13SwitchLoad,
	"E14": E14LaunchCost,
	"E15": E15InFabricCollectives,
	"E16": E16TopologyZoo,
}

// IDs lists experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	//tgvet:allow maporder(keys are sorted by the sort.Slice below before use)
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Get returns the runner for id (nil if unknown).
func Get(id string) Runner { return registry[id] }

// RunAll executes every experiment in order.
func RunAll() []*Result {
	var out []*Result
	for _, id := range IDs() {
		out = append(out, registry[id]())
	}
	return out
}
