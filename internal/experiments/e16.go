package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
	"telegraphos/internal/stats"
)

// E16: the generated-topology zoo under load. The paper's prototype is a
// handful of workstations on one switch; its §4 outlook is "hundreds of
// workstations", which needs a scalable fabric. This experiment drives
// the generated topologies (torus, fat-tree, dragonfly — each with
// table-driven deadlock-free routing over the HIB's virtual channels)
// with adversarial permutation traffic and multi-core nodes, and checks
// the shapes scale the way their literature says they must.

// topoCluster builds an n-node cluster of the named fabric with cores
// CPUs per node. Memory stays small per node (the backing store is
// lazily chunked, so large machines cost only what they touch).
func topoCluster(topo string, n, cores int) *core.Cluster {
	cfg := params.Default(n)
	cfg.Seed = baseSeed
	cfg.Topology = topo
	cfg.CoresPerNode = cores
	cfg.Sizing.MemBytes = 1 << 23 // room for one shared page per node
	cfg.Shards = shardCount
	cfg.PerMessageDelivery = perMessage
	return core.New(cfg)
}

// topoPermTime runs the half-rotation adversarial permutation — every
// node's cores store per words each into the word homed on the node
// n/2 away (all traffic crosses the bisection) — and returns the
// completion time.
func topoPermTime(topo string, n, cores, per int) sim.Time {
	c := topoCluster(topo, n, cores)
	base := make([]addrspace.VAddr, n)
	for i := 0; i < n; i++ {
		base[i] = c.AllocShared(addrspace.NodeID(i), 8)
	}
	for i := 0; i < n; i++ {
		dst := (i + n/2) % n
		for co := 0; co < cores; co++ {
			co := co
			c.SpawnCore(i, co, "perm", func(ctx *cpu.Ctx) {
				for k := 0; k < per; k++ {
					ctx.Store(base[dst], uint64(co*per+k+1))
				}
				ctx.Fence()
			})
		}
	}
	settle(c)
	return c.Eng.Now()
}

// topoReadRTT measures a remote read round trip from node 0 to the node
// n/2 away, plus the number of switches the request crosses.
func topoReadRTT(topo string, n int) (sim.Time, int) {
	c := topoCluster(topo, n, 1)
	far := n / 2
	va := c.AllocShared(addrspace.NodeID(far), 16)
	c.Nodes[far].Mem.WriteWord(c.SharedOffset(va), 99)
	hops, err := c.Net.Walk(0, addrspace.NodeID(far))
	if err != nil {
		panic(err)
	}
	var rtt sim.Time
	c.Spawn(0, "reader", func(ctx *cpu.Ctx) {
		ctx.Load(va + 8) // warm the TLB off the timed path
		t0 := ctx.Now()
		if v := ctx.Load(va); v != 99 {
			panic(fmt.Sprintf("E16: read returned %d", v))
		}
		rtt = ctx.Now() - t0
	})
	settle(c)
	return rtt, len(hops)
}

// TopoPoint is one cell of the topology sweep.
type TopoPoint struct {
	Topo    string  `json:"topo"`
	Nodes   int     `json:"nodes"`
	Cores   int     `json:"cores"`
	Hops    int     `json:"hops"`     // switches crossed on the measured route
	RTTUs   float64 `json:"rtt_us"`   // remote read round trip, µs
	PermUs  float64 `json:"perm_us"`  // half-rotation permutation completion, µs
	PerOpUs float64 `json:"perop_us"` // permutation µs per delivered write
}

// E16Topos are the fabrics of the sweep; "star" is the paper's
// single-switch baseline.
var E16Topos = []string{"star", "torus2d", "torus3d", "fattree", "dragonfly", "dragonfly-val"}

// E16Sweep measures every (topology, size, cores) cell: read RTT across
// the machine's half-diameter and adversarial-permutation completion.
// Reachable through cmd/tgbench -topo (sizes 16/64/256, cores 1/4).
func E16Sweep(topos []string, sizes, coreCounts []int, per int) []TopoPoint {
	var out []TopoPoint
	for _, topo := range topos {
		for _, n := range sizes {
			rtt, hops := topoReadRTT(topo, n)
			for _, cores := range coreCounts {
				perm := topoPermTime(topo, n, cores, per)
				ops := float64(n * cores * per)
				out = append(out, TopoPoint{
					Topo: topo, Nodes: n, Cores: cores, Hops: hops,
					RTTUs:   rtt.Micros(),
					PermUs:  perm.Micros(),
					PerOpUs: perm.Micros() / ops,
				})
			}
		}
	}
	return out
}

// FormatTopo renders the sweep as the aligned table recorded in
// EXPERIMENTS.md's E16 section.
func FormatTopo(points []TopoPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %6s %5s %9s %11s %10s\n",
		"topology", "nodes", "cores", "hops", "rtt_us", "perm_us", "perop_us")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %6d %6d %5d %9.2f %11.1f %10.3f\n",
			p.Topo, p.Nodes, p.Cores, p.Hops, p.RTTUs, p.PermUs, p.PerOpUs)
	}
	return b.String()
}

// WriteTopoJSON writes the sweep as indented JSON (BENCH_topo.json).
func WriteTopoJSON(w io.Writer, points []TopoPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}

// E16TopologyZoo is the registry-sized run: it checks the structural
// claims each topology is built on, at sizes small enough for tier-1.
func E16TopologyZoo() *Result {
	const per = 4

	// Read latency tracks hop count: the torus diameter grows with
	// sqrt(N), the fat-tree's path length stays at its fixed up/down
	// depth.
	torusRTT16, torusHops16 := topoReadRTT("torus2d", 16)
	torusRTT64, torusHops64 := topoReadRTT("torus2d", 64)
	ftRTT16, ftHops16 := topoReadRTT("fattree", 16)
	ftRTT64, ftHops64 := topoReadRTT("fattree", 64)

	// Valiant's bet: on the adversarial permutation, minimal dragonfly
	// routing funnels every packet of a group through one global trunk;
	// randomized detours spread the load.
	minT := topoPermTime("dragonfly", 64, 1, per)
	valT := topoPermTime("dragonfly-val", 64, 1, per)

	// One HIB per workstation: four cores sharing the board complete the
	// same total traffic no faster than one core issuing it alone.
	oneCore := topoPermTime("torus2d", 16, 1, 4*per)
	fourCores := topoPermTime("torus2d", 16, 4, per)

	series := stats.Series{Name: "E16: permutation time vs topology (64 nodes)", XLabel: "topology_index", YLabel: "time_us"}
	for i, topo := range E16Topos {
		series.Add(float64(i), topoPermTime(topo, 64, 1, per).Micros())
	}

	return &Result{
		ID:       "E16",
		Title:    "Topology zoo: deadlock-free fabrics under adversarial load",
		Artifact: "§4 outlook: scaling past one switch",
		Rows: []Row{
			{Name: "Torus read RTT grows with diameter (16→64 nodes)",
				Paper:    "hops ~ sqrt(N), latency follows",
				Measured: fmt.Sprintf("%d hops %.1f µs -> %d hops %.1f µs", torusHops16, torusRTT16.Micros(), torusHops64, torusRTT64.Micros()),
				Match:    torusHops64 > torusHops16 && torusRTT64 > torusRTT16},
			{Name: "Fat-tree read RTT flat across sizes (16→64 nodes)",
				Paper:    "fixed up*/down* depth",
				Measured: fmt.Sprintf("%d hops %.1f µs -> %d hops %.1f µs", ftHops16, ftRTT16.Micros(), ftHops64, ftRTT64.Micros()),
				Match:    ftHops64 == ftHops16 && ftRTT64 == ftRTT16},
			{Name: "Valiant vs minimal dragonfly, adversarial permutation",
				Paper:    "detours relieve the group-pair trunk",
				Measured: fmt.Sprintf("minimal %.1f µs vs valiant %.1f µs (%.2fx)", minT.Micros(), valT.Micros(), minT.Micros()/valT.Micros()),
				Match:    valT < minT},
			{Name: "Four cores, one HIB: same traffic, same time",
				Paper:    "the board bounds injection, not the cores",
				Measured: fmt.Sprintf("1 core %.1f µs vs 4 cores %.1f µs", oneCore.Micros(), fourCores.Micros()),
				Match:    ratio(fourCores, oneCore) > 0.8 && ratio(fourCores, oneCore) < 1.25},
		},
		Series: []stats.Series{series},
	}
}

// ratio divides two times as float.
func ratio(a, b sim.Time) float64 { return float64(a) / float64(b) }
