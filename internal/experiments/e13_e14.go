package experiments

import (
	"fmt"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/cpu"
	"telegraphos/internal/link"
	"telegraphos/internal/packet"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
	"telegraphos/internal/stats"
	"telegraphos/internal/switchfab"
	"telegraphos/internal/topology"
)

// E13SwitchLoad characterizes the switch fabric the coherence protocol
// depends on ([16, 17]): lossless back-pressured delivery, in-order per
// source-destination pair, and the latency/throughput curve under
// uniform random traffic on an 8-port star.
func E13SwitchLoad() *Result {
	latSeries := stats.Series{Name: "E13: mean packet latency vs offered load", XLabel: "offered_load", YLabel: "latency_us"}
	thrSeries := stats.Series{Name: "E13: delivered/offered vs offered load", XLabel: "offered_load", YLabel: "delivered_fraction"}

	const nodes = 8
	const perNode = 200
	wirePerPkt := 5 * 140 * sim.Nanosecond // header words x word time

	var lossAny, reorderAny bool
	var latLow, latHigh float64
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1}
	for _, load := range loads {
		eng := sim.NewEngine(41 + baseSeed)
		net := topology.BuildStar(eng, nodes, params.DefaultLink(), switchfab.Config{RouteDelay: 100})
		gap := sim.Time(float64(wirePerPkt) / load)

		type key struct{ src, dst addrspace.NodeID }
		sendT := make(map[uint64]sim.Time)
		lastSeq := make(map[key]uint64)
		var lat stats.Tally
		received := 0
		var seq uint64

		for s := 0; s < nodes; s++ {
			s := s
			eng.Spawn(fmt.Sprintf("src%d", s), func(p *sim.Proc) {
				rng := eng.Rand()
				start := p.Now()
				for i := 0; i < perNode; i++ {
					d := rng.Intn(nodes - 1)
					if d >= s {
						d++
					}
					seq++
					id := seq
					// Open-loop latency: stamp the *intended* injection
					// time, so source-side queueing under overload counts.
					sendT[id] = start + sim.Time(i)*gap
					net.Send(p, &packet.Packet{
						Type:  packet.WriteReq,
						Src:   addrspace.NodeID(s),
						Dst:   addrspace.NodeID(d),
						ReqID: id,
						Val:   uint64(i), // per-source sequence for order check
					})
					// Pace to the intended schedule (open-loop source).
					if next := start + sim.Time(i+1)*gap; next > p.Now() {
						p.Sleep(next - p.Now())
					}
				}
			})
		}
		for dd := 0; dd < nodes; dd++ {
			id := addrspace.NodeID(dd)
			eng.SpawnDaemon(fmt.Sprintf("sink%d", dd), func(p *sim.Proc) {
				for {
					pkt := net.Recv(p, id, packet.VCRequest)
					lat.Add((p.Now() - sendT[pkt.ReqID]).Micros())
					k := key{pkt.Src, pkt.Dst}
					if last, ok := lastSeq[k]; ok && pkt.Val <= last {
						reorderAny = true
					}
					lastSeq[k] = pkt.Val
					received++
				}
			})
		}
		if err := eng.Run(); err != nil {
			panic(err)
		}
		sent := nodes * perNode
		if received != sent {
			lossAny = true
		}
		latSeries.Add(load, lat.Mean())
		thrSeries.Add(load, float64(received)/float64(sent))
		if load == loads[0] {
			latLow = lat.Mean()
		}
		if load == loads[len(loads)-1] {
			latHigh = lat.Mean()
		}
	}

	return &Result{
		ID:       "E13",
		Title:    "Switch fabric under uniform load",
		Artifact: "§2.1 switch properties [16, 17]",
		Rows: []Row{
			{Name: "Loss under overload", Paper: "lossless (back-pressure)",
				Measured: fmt.Sprintf("loss=%v", lossAny), Match: !lossAny},
			{Name: "Per-pair ordering", Paper: "in-order delivery",
				Measured: fmt.Sprintf("reorder=%v", reorderAny), Match: !reorderAny},
			{Name: "Latency growth to saturation", Paper: "queueing grows near capacity",
				Measured: fmt.Sprintf("%.2f µs -> %.2f µs", latLow, latHigh), Match: latHigh > 2*latLow},
		},
		Series: []stats.Series{latSeries, thrSeries},
	}
}

// E14LaunchCost compares the two ways of launching a special (atomic)
// operation: the Telegraphos II user-level sequence — uncached stores
// into a context, a shadow store, a trigger read (§2.2.4) — against the
// "simplest way": trapping into the operating system (§2.2.5).
func E14LaunchCost() *Result {
	c := lightCluster(2)
	x := c.AllocShared(1, 8)
	const ops = 200
	var userUS, palUS, osUS float64
	c.Spawn(0, "bench", func(ctx *cpu.Ctx) {
		ctx.FetchAndInc(x) // warm TLB/context
		start := ctx.Now()
		for i := 0; i < ops; i++ {
			ctx.FetchAndInc(x)
		}
		userUS = (ctx.Now() - start).Micros() / ops

		start = ctx.Now()
		for i := 0; i < ops; i++ {
			ctx.AtomicPAL(packet.FetchAndInc, x, 0)
		}
		palUS = (ctx.Now() - start).Micros() / ops

		start = ctx.Now()
		for i := 0; i < ops; i++ {
			ctx.AtomicViaOS(packet.FetchAndInc, x, 0, 0)
		}
		osUS = (ctx.Now() - start).Micros() / ops
	})
	settle(c)
	ratio := osUS / userUS
	return &Result{
		ID:       "E14",
		Title:    "User-level vs PAL-code vs OS-trap launch of atomic operations",
		Artifact: "§2.2.4–§2.2.5",
		Rows: []Row{
			{Name: "User-level launch (contexts+shadow+key)", Paper: "a few µs (no OS)",
				Measured: fmt.Sprintf("%.2f µs", userUS), Match: userUS < 20},
			{Name: "PAL-code launch (Telegraphos I)", Paper: "uninterruptible, no trap; Alpha-specific",
				Measured: fmt.Sprintf("%.2f µs", palUS), Match: palUS < 20},
			{Name: "OS-trap launch", Paper: "adds trap + table lookup",
				Measured: fmt.Sprintf("%.2f µs (%.1fx user-level)", osUS, ratio), Match: ratio > 3},
		},
	}
}

// Unused-import guards for shared helpers.
var (
	_ = link.DefaultConfig
	_ = addrspace.WordSize
)
