package experiments

import (
	"fmt"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/coherence"
	"telegraphos/internal/cpu"
	"telegraphos/internal/sim"
	"telegraphos/internal/stats"
)

// E4OwnerSerialization reproduces Figure 2: without an owner, concurrent
// multicast writers leave the copies of a page permanently divergent;
// with the owner-serialized reflected writes of §2.3.1 all copies
// converge.
func E4OwnerSerialization() *Result {
	// --- Ownerless: raw eager-update multicast, two concurrent writers.
	divergent := func() bool {
		c := lightCluster(3)
		x := c.AllocShared(0, 8)
		off := c.SharedOffset(x)
		pn := addrspace.PageOf(off, c.PageSize())
		// Nodes 1 and 2 hold "copies" (their own shared page at the same
		// offset) and multicast their writes to everyone else.
		for _, w := range []int{1, 2} {
			var dests []addrspace.GPage
			for o := 0; o < 3; o++ {
				if o != w {
					dests = append(dests, addrspace.GPage{Node: addrspace.NodeID(o), Page: pn})
				}
			}
			if err := c.Nodes[w].HIB.MapMulticast(pn, dests...); err != nil {
				panic(err)
			}
			c.RemapShared(w, x, addrspace.NodeID(w)) // write the local copy
		}
		c.Spawn(1, "w1", func(ctx *cpu.Ctx) { ctx.Store(x, 1); ctx.Fence() })
		c.Spawn(2, "w2", func(ctx *cpu.Ctx) { ctx.Store(x, 2); ctx.Fence() })
		settle(c)
		v1 := c.Nodes[1].Mem.ReadWord(off)
		v2 := c.Nodes[2].Mem.ReadWord(off)
		return v1 != v2
	}()

	// --- Owner-serialized: the §2.3 update protocol, same scenario.
	converged := func() bool {
		c := lightCluster(3)
		u := coherence.NewUpdate(c, coherence.CountersInfinite)
		x := c.AllocShared(0, 8)
		u.SharePage(x, 0, []int{0, 1, 2})
		off := c.SharedOffset(x)
		c.Spawn(1, "w1", func(ctx *cpu.Ctx) { ctx.Store(x, 1); ctx.Fence() })
		c.Spawn(2, "w2", func(ctx *cpu.Ctx) { ctx.Store(x, 2); ctx.Fence() })
		settle(c)
		v0 := c.Nodes[0].Mem.ReadWord(off)
		v1 := c.Nodes[1].Mem.ReadWord(off)
		v2 := c.Nodes[2].Mem.ReadWord(off)
		return v0 == v1 && v1 == v2
	}()

	return &Result{
		ID:       "E4",
		Title:    "Concurrent multicast writers: divergence without an owner",
		Artifact: "Figure 2 / §2.3.1",
		Rows: []Row{
			{Name: "Ownerless multicast", Paper: "copies end up with different values",
				Measured: fmt.Sprintf("divergent=%v", divergent), Match: divergent},
			{Name: "Owner-serialized updates", Paper: "all copies converge",
				Measured: fmt.Sprintf("converged=%v", converged), Match: converged},
		},
	}
}

// E5CounterAnomalies reproduces the §2.3.2 read-own-write anomalies and
// shows the §2.3.3 pending-write counters eliminate them, in all three
// counter configurations.
func E5CounterAnomalies() *Result {
	run := func(mode coherence.CounterMode) bool {
		c := lightCluster(2)
		u := coherence.NewUpdate(c, mode)
		x := c.AllocShared(0, 8)
		u.SharePage(x, 0, []int{0, 1})
		sawStale := false
		c.Spawn(1, "writer", func(ctx *cpu.Ctx) {
			ctx.Store(x, 2)
			ctx.Store(x, 3)
			for i := 0; i < 40; i++ {
				if v := ctx.Load(x); v != 3 {
					sawStale = true
				}
				ctx.Compute(500 * sim.Nanosecond)
			}
		})
		settle(c)
		return sawStale
	}
	off := run(coherence.CountersOff)
	inf := run(coherence.CountersInfinite)
	cached := run(coherence.CountersCached)
	return &Result{
		ID:       "E5",
		Title:    "Pending-write counters eliminate reflected-write anomalies",
		Artifact: "§2.3.2–§2.3.3",
		Rows: []Row{
			{Name: "Counters off (Telegraphos I)", Paper: "chaotic writes may read stale own-write",
				Measured: fmt.Sprintf("stale-read=%v", off), Match: off},
			{Name: "Per-word counters", Paper: "no anomaly",
				Measured: fmt.Sprintf("stale-read=%v", inf), Match: !inf},
			{Name: "16-entry counter CAM", Paper: "no anomaly",
				Measured: fmt.Sprintf("stale-read=%v", cached), Match: !cached},
		},
	}
}

// E6CounterCacheSweep measures the §2.3.4 claim that a 16–32 entry CAM
// suffices: a chaotic multi-writer workload is run with CAM sizes 1..64
// and the stall rate and peak occupancy recorded.
func E6CounterCacheSweep() *Result {
	occSeries := stats.Series{Name: "E6: counter CAM behaviour vs size", XLabel: "cam_entries", YLabel: "stalls"}
	occ2 := stats.Series{Name: "E6: peak live counters vs CAM size", XLabel: "cam_entries", YLabel: "max_occupancy"}
	var stalls16, stalls32 int64
	for _, size := range []int{1, 2, 4, 8, 16, 32, 64} {
		c := lightClusterWithCAM(3, size)
		u := coherence.NewUpdate(c, coherence.CountersCached)
		x := c.AllocShared(0, 4096)
		u.SharePage(x, 0, []int{0, 1, 2})
		for n := 1; n <= 2; n++ {
			n := n
			c.Spawn(n, "chaos", func(ctx *cpu.Ctx) {
				state := uint64(n) * 0x9E3779B97F4A7C15
				for i := 0; i < 150; i++ {
					state = state*6364136223846793005 + 1442695040888963407
					w := int(state>>33) % 64
					ctx.Store(streamVA(x, w), state)
					// An application does work between shared writes; the
					// CAM only needs to cover the writes genuinely in
					// flight (§2.3.4).
					ctx.Compute(4 * sim.Microsecond)
				}
				ctx.Fence()
			})
		}
		settle(c)
		var stalls int64
		maxOcc := 0
		for n := 1; n <= 2; n++ {
			cc := u.Mgr(n).Cache()
			stalls += cc.Stalls()
			maxOcc = max(maxOcc, cc.MaxOccupancy())
		}
		occSeries.Add(float64(size), float64(stalls))
		occ2.Add(float64(size), float64(maxOcc))
		if size == 16 {
			stalls16 = stalls
		}
		if size == 32 {
			stalls32 = stalls
		}
	}
	return &Result{
		ID:       "E6",
		Title:    "Counter-cache (CAM) sizing",
		Artifact: "§2.3.4 (\"16-32 entries will have enough space\")",
		Rows: []Row{
			{Name: "Stalls with 16-entry CAM", Paper: "≈ none",
				Measured: fmt.Sprintf("%d", stalls16), Match: stalls16 == 0},
			{Name: "Stalls with 32-entry CAM", Paper: "none",
				Measured: fmt.Sprintf("%d", stalls32), Match: stalls32 == 0},
		},
		Series: []stats.Series{occSeries, occ2},
	}
}

// E7FenceConsistency reproduces the §2.3.5 flag/data example: with a
// replicated data page whose owner is a third node, the consumer can see
// the flag before the data reflection arrives and read stale data;
// embedding FENCE in the release (UNLOCK) eliminates the stale read.
func E7FenceConsistency() *Result {
	run := func(useFence bool) int {
		c := lightCluster(3)
		u := coherence.NewUpdate(c, coherence.CountersInfinite)
		data := c.AllocShared(2, 8) // replicated; owner far (node 2)
		u.SharePage(data, 2, []int{0, 1, 2})
		flag := c.AllocShared(1, 8) // plain word homed at the consumer
		stale := 0
		const iters = 10
		c.Spawn(0, "producer", func(ctx *cpu.Ctx) {
			for i := 1; i <= iters; i++ {
				ctx.Store(data, uint64(100+i))
				if useFence {
					ctx.Fence() // the UNLOCK of §2.3.5 embeds this
				}
				ctx.Store(flag, uint64(i))
				// Pace iterations so each round is independent.
				ctx.Compute(40 * sim.Microsecond)
			}
		})
		c.Spawn(1, "consumer", func(ctx *cpu.Ctx) {
			for i := 1; i <= iters; i++ {
				for ctx.Load(flag) < uint64(i) {
					ctx.Compute(500 * sim.Nanosecond)
				}
				if got := ctx.Load(data); got != uint64(100+i) {
					stale++
				}
			}
		})
		settle(c)
		return stale
	}
	without := run(false)
	with := run(true)
	return &Result{
		ID:       "E7",
		Title:    "FENCE prevents flag/data reordering",
		Artifact: "§2.3.5 memory-consistency example",
		Rows: []Row{
			{Name: "write(data); write(flag)", Paper: "consumer may read stale data",
				Measured: fmt.Sprintf("%d/10 stale reads", without), Match: without > 0},
			{Name: "write(data); FENCE; write(flag)", Paper: "never stale",
				Measured: fmt.Sprintf("%d/10 stale reads", with), Match: with == 0},
		},
	}
}

// E8GalacticaAnomaly reproduces §2.4: the ring-based Galactica protocol
// lets a third processor observe "1, 2, 1" — a sequence invalid under
// any consistency model — while the Telegraphos owner-based protocol
// only ever produces valid orders, across a sweep of writer offsets.
func E8GalacticaAnomaly() *Result {
	galACount := 0
	tgACount := 0
	const sweeps = 7
	for s := 0; s < sweeps; s++ {
		d := sim.Time(s) * 500 * sim.Nanosecond

		// Galactica ring: winner (node 1) -> observer (node 0) -> loser (node 2).
		cg := lightCluster(3)
		g := coherence.NewGalactica(cg)
		xg := cg.AllocShared(0, 8)
		g.ShareRing(xg, []int{1, 0, 2})
		offg := cg.SharedOffset(xg)
		g.Mgr(0).Watch(offg)
		cg.Spawn(1, "w1", func(ctx *cpu.Ctx) { ctx.Store(xg, 1) })
		cg.Spawn(2, "w2", func(ctx *cpu.Ctx) { ctx.Compute(d); ctx.Store(xg, 2) })
		settle(cg)
		if hasABA(g.Mgr(0).AppliedValues(offg)) {
			galACount++
		}

		// Telegraphos update protocol, same scenario.
		ct := lightCluster(3)
		u := coherence.NewUpdate(ct, coherence.CountersInfinite)
		xt := ct.AllocShared(0, 8)
		u.SharePage(xt, 0, []int{0, 1, 2})
		offt := ct.SharedOffset(xt)
		u.Mgr(0).Watch(offt)
		ct.Spawn(1, "w1", func(ctx *cpu.Ctx) { ctx.Store(xt, 1); ctx.Fence() })
		ct.Spawn(2, "w2", func(ctx *cpu.Ctx) { ctx.Compute(d); ctx.Store(xt, 2); ctx.Fence() })
		settle(ct)
		if hasABA(u.Mgr(0).AppliedValues(offt)) {
			tgACount++
		}
	}
	return &Result{
		ID:       "E8",
		Title:    "Galactica's \"1,2,1\" anomaly vs owner serialization",
		Artifact: "§2.4",
		Rows: []Row{
			{Name: "Galactica ring (7 timings)", Paper: "third processor may see 1,2,1",
				Measured: fmt.Sprintf("%d/%d runs showed it", galACount, sweeps), Match: galACount > 0},
			{Name: "Telegraphos protocol", Paper: "only {1},{2},{1,2},{2,1}",
				Measured: fmt.Sprintf("%d/%d invalid sequences", tgACount, sweeps), Match: tgACount == 0},
		},
	}
}

// hasABA reports whether vals contains the shape a...b...a (a != b).
func hasABA(vals []uint64) bool {
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] == vals[i] {
				continue
			}
			for k := j + 1; k < len(vals); k++ {
				if vals[k] == vals[i] {
					return true
				}
			}
		}
	}
	return false
}
