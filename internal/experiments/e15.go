package experiments

import (
	"fmt"

	"telegraphos/internal/collective"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
	"telegraphos/internal/stats"
	"telegraphos/internal/switchfab"
	"telegraphos/internal/tsync"
)

// collCluster builds a tree-fabric cluster for the collective
// experiments; memory is kept small so the big-node sweeps stay cheap.
func collCluster(n int) *core.Cluster {
	cfg := params.Default(n)
	cfg.Seed = baseSeed
	cfg.Topology = "tree"
	cfg.Sizing.MemBytes = 1 << 16
	cfg.Shards = shardCount
	cfg.PerMessageDelivery = perMessage
	return core.New(cfg)
}

// barrierRoundTime measures the mean time of one barrier episode over
// rounds synchronizations of all n nodes, host-side (the tsync
// hot-counter barrier) or in-fabric (the switch-resident combining
// barrier).
func barrierRoundTime(n, rounds int, fabric bool) sim.Time {
	c := collCluster(n)
	var participant func() interface{ Wait(*cpu.Ctx) }
	if fabric {
		b := collective.New(c).NewBarrier()
		participant = func() interface{ Wait(*cpu.Ctx) } { return b.Participant() }
	} else {
		b := tsync.NewBarrier(c, 0, n)
		participant = func() interface{ Wait(*cpu.Ctx) } { return b.Participant() }
	}
	for i := 0; i < n; i++ {
		w := participant()
		c.Spawn(i, "p", func(ctx *cpu.Ctx) {
			for r := 0; r < rounds; r++ {
				w.Wait(ctx)
			}
		})
	}
	settle(c)
	return c.Eng.Now() / sim.Time(rounds)
}

// faaRunTime measures the completion time of n nodes each issuing per
// fetch&increments on one hot counter homed on node 0, with or without
// in-switch combining. It also reports how many requests the fabric
// merged and the counter's final value — combining must be invisible:
// the final count equals n*per either way.
func faaRunTime(n, per int, combine bool) (sim.Time, int64, uint64) {
	c := collCluster(n)
	if combine {
		collective.New(c).EnableCombining(switchfab.CombineConfig{})
	}
	va := c.AllocShared(0, 8)
	for i := 0; i < n; i++ {
		c.Spawn(i, "p", func(ctx *cpu.Ctx) {
			for k := 0; k < per; k++ {
				ctx.FetchAndInc(va)
			}
		})
	}
	settle(c)
	t := c.Eng.Now()
	var final uint64
	c.Spawn(0, "check", func(ctx *cpu.Ctx) { final = ctx.Load(va) })
	settle(c)
	return t, collective.FabricStats(c.Net).Combined, final
}

// E15Sizes is the node-count sweep the registry run measures. The full
// paper-scale sweep (64–1024 nodes, EXPERIMENTS.md) is produced by
// E15Scale, reachable through cmd/tgbench -collscale.
var E15Sizes = []int{8, 16, 32, 64}

// E15Scale sweeps host-side vs in-fabric barrier latency over sizes,
// returning one series per implementation (mean µs per barrier episode).
func E15Scale(sizes []int, rounds int) (host, fabric stats.Series) {
	host = stats.Series{Name: "E15: host-side barrier latency vs nodes", XLabel: "nodes", YLabel: "latency_us"}
	fabric = stats.Series{Name: "E15: in-fabric barrier latency vs nodes", XLabel: "nodes", YLabel: "latency_us"}
	for _, n := range sizes {
		host.Add(float64(n), barrierRoundTime(n, rounds, false).Micros())
		fabric.Add(float64(n), barrierRoundTime(n, rounds, true).Micros())
	}
	return host, fabric
}

// E15InFabricCollectives compares host-side synchronization built from
// remote atomic operations against the in-network collective subsystem:
// the switch-resident barrier's latency grows with tree depth — O(log N)
// — while the hot-counter barrier serializes all N arrivals at one home
// board, and in-switch combining lifts hot-spot fetch&add throughput the
// way the NYU Ultracomputer combining network does.
func E15InFabricCollectives() *Result {
	const rounds = 2
	hostSeries, fabricSeries := E15Scale(E15Sizes, rounds)

	lo, hi := 0, len(E15Sizes)-1
	hostLo, hostHi := hostSeries.Points[lo].Y, hostSeries.Points[hi].Y
	fabLo, fabHi := fabricSeries.Points[lo].Y, fabricSeries.Points[hi].Y
	hostGrowth := hostHi / hostLo
	fabGrowth := fabHi / fabLo

	const faaNodes, faaPer = 64, 4
	plainT, _, plainFinal := faaRunTime(faaNodes, faaPer, false)
	combT, merged, combFinal := faaRunTime(faaNodes, faaPer, true)
	speedup := plainT.Micros() / combT.Micros()
	equivalent := plainFinal == faaNodes*faaPer && combFinal == plainFinal

	return &Result{
		ID:       "E15",
		Title:    "In-network collectives vs host-side synchronization",
		Artifact: "§2.2.4 hot-spot atomics; switch-resident combining",
		Rows: []Row{
			{Name: fmt.Sprintf("Host barrier growth %d→%d nodes", E15Sizes[lo], E15Sizes[hi]),
				Paper:    "O(N): serialized home-board arrivals",
				Measured: fmt.Sprintf("%.1f µs -> %.1f µs (%.1fx)", hostLo, hostHi, hostGrowth),
				Match:    hostGrowth > 4},
			{Name: fmt.Sprintf("In-fabric barrier growth %d→%d nodes", E15Sizes[lo], E15Sizes[hi]),
				Paper:    "O(log N): one combining wave per tree level",
				Measured: fmt.Sprintf("%.1f µs -> %.1f µs (%.1fx)", fabLo, fabHi, fabGrowth),
				Match:    fabGrowth < hostGrowth/2},
			{Name: fmt.Sprintf("Head-to-head at %d nodes", E15Sizes[hi]),
				Paper:    "in-fabric wins, margin grows with N",
				Measured: fmt.Sprintf("host %.1f µs vs fabric %.1f µs (%.1fx)", hostHi, fabHi, hostHi/fabHi),
				Match:    fabHi*2 < hostHi},
			{Name: fmt.Sprintf("Hot-counter fetch&add, %d nodes x %d ops", faaNodes, faaPer),
				Paper:    "combining relieves the hot spot, same final count",
				Measured: fmt.Sprintf("%.1f µs -> %.1f µs (%.2fx, %d merged, final %d=%d)", plainT.Micros(), combT.Micros(), speedup, merged, plainFinal, combFinal),
				Match:    speedup > 1.5 && merged > 0 && equivalent},
		},
		Series: []stats.Series{hostSeries, fabricSeries},
	}
}
