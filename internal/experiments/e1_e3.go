package experiments

import (
	"fmt"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/gates"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
	"telegraphos/internal/stats"
)

// lightCluster builds a small-memory cluster for experiments.
func lightCluster(n int) *core.Cluster {
	cfg := params.Default(n)
	cfg.Seed = baseSeed
	cfg.Sizing.MemBytes = 1 << 21
	cfg.Shards = shardCount
	cfg.PerMessageDelivery = perMessage
	return core.New(cfg)
}

// E1Latency reproduces the §3.2 latency table: remote write 0.70 µs
// (long-stream network rate), remote read 7.2 µs, measured over 10,000
// operations on a two-workstation configuration.
func E1Latency() *Result {
	c := lightCluster(2)
	x := c.AllocShared(1, 4096)
	const ops = 10000
	var writeUS, readUS float64
	c.Spawn(0, "bench", func(ctx *cpu.Ctx) {
		start := ctx.Now()
		for i := 0; i < ops; i++ {
			ctx.Store(x, uint64(i))
		}
		ctx.Fence()
		writeUS = (ctx.Now() - start).Micros() / ops

		ctx.Load(x) // warm TLB and read slot
		var tally stats.Tally
		for i := 0; i < 1000; i++ {
			s := ctx.Now()
			ctx.Load(x)
			tally.Add((ctx.Now() - s).Micros())
		}
		readUS = tally.Mean()
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	return &Result{
		ID:       "E1",
		Title:    "Remote read / remote write latency",
		Artifact: "§3.2 latency table",
		Rows: []Row{
			{
				Name:     "Remote Write (stream of 10000)",
				Paper:    "0.70 µs",
				Measured: fmt.Sprintf("%.2f µs", writeUS),
				Match:    writeUS > 0.6 && writeUS < 0.8,
			},
			{
				Name:     "Remote Read",
				Paper:    "7.2 µs",
				Measured: fmt.Sprintf("%.2f µs", readUS),
				Match:    readUS > 6.5 && readUS < 8.0,
			},
			{
				Name:     "Read/write ratio",
				Paper:    "≈ 10x",
				Measured: fmt.Sprintf("%.1fx", readUS/writeUS),
				Match:    readUS/writeUS > 7 && readUS/writeUS < 14,
			},
		},
	}
}

// E2WriteBatch reproduces the §3.2 in-text claim: a short batch of 100
// remote writes completes in under 50 µs (< 0.5 µs per write), because
// the HIB's queue absorbs the burst at CPU issue rate, while long
// streams settle at the network transfer rate.
func E2WriteBatch() *Result {
	series := stats.Series{
		Name:   "E2: per-write latency vs batch size",
		XLabel: "batch_size",
		YLabel: "us_per_write",
	}
	var us100 float64
	for _, batch := range []int{1, 10, 100, 300, 1000, 10000} {
		c := lightCluster(2)
		x := c.AllocShared(1, 8)
		var perOp float64
		b := batch
		c.Spawn(0, "batch", func(ctx *cpu.Ctx) {
			ctx.Store(x, 0) // warm TLB
			start := ctx.Now()
			for i := 0; i < b; i++ {
				ctx.Store(x, uint64(i))
			}
			perOp = (ctx.Now() - start).Micros() / float64(b)
		})
		if err := c.Run(); err != nil {
			panic(err)
		}
		series.Add(float64(batch), perOp)
		if batch == 100 {
			us100 = perOp * 100
		}
	}
	return &Result{
		ID:       "E2",
		Title:    "Short write batches run at CPU issue rate",
		Artifact: "§3.2 in-text (100-write batch)",
		Rows: []Row{
			{
				Name:     "100 remote writes",
				Paper:    "< 50 µs (< 0.5 µs each)",
				Measured: fmt.Sprintf("%.1f µs (%.2f µs each)", us100, us100/100),
				Match:    us100 < 50,
			},
		},
		Series: []stats.Series{series},
		Notes:  "long batches converge to the 0.70 µs/op network rate of E1",
	}
}

// E3GateCount reproduces Table 1: the HIB hardware inventory. Logic
// constants are the published design values; SRAM sizes are computed
// from the configured capacities.
func E3GateCount() *Result {
	sz := params.DefaultSizing()
	rows := gates.Inventory(sz)
	shared := gates.SharedMemoryLogic(sz)
	msg := gates.MessageLogic(sz)
	var mcast, pagectr float64
	for _, r := range rows {
		switch r.Block {
		case "Multicast (eager sharing)":
			mcast = r.SRAMKbit
		case "Page Access Counters":
			pagectr = r.SRAMKbit
		}
	}
	return &Result{
		ID:       "E3",
		Title:    "HIB gate count and memory inventory",
		Artifact: "Table 1",
		Rows: []Row{
			{Name: "Message-related logic", Paper: "3300 gates", Measured: fmt.Sprintf("%d gates", msg), Match: msg == 3300},
			{Name: "Shared-memory logic", Paper: "2700 gates", Measured: fmt.Sprintf("%d gates", shared), Match: shared == 2700},
			{Name: "Multicast SRAM", Paper: "512 Kbit", Measured: fmt.Sprintf("%.0f Kbit", mcast), Match: mcast == 512},
			{Name: "Page counter SRAM", Paper: "2048 Kbit", Measured: fmt.Sprintf("%.0f Kbit", pagectr), Match: pagectr == 2048},
		},
		Notes: "run cmd/tggates for the full table",
	}
}

// streamVA is a helper giving the i-th word of a region.
func streamVA(base addrspace.VAddr, i int) addrspace.VAddr {
	return base + addrspace.VAddr(8*i)
}

// settle runs the cluster until quiescence, panicking on simulation
// errors (experiments are programs, not tests).
func settle(c *core.Cluster) {
	if err := c.Run(); err != nil {
		panic(err)
	}
}

// usedFor silences structured-use warnings in sweep helpers.
var _ = sim.Time(0)
