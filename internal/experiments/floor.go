package experiments

// The CI throughput floor: a regression gate recorded next to
// BENCH_pdes.json. When `make bench` regenerates the PDES report it also
// records a conservative single-shard events/sec floor plus a reference
// spin time for the recording host; scripts/check.sh replays a short
// benchmark and fails if throughput drops below the floor. The reference
// spin is the slow-CI-host guard: a host that runs the fixed CPU-bound
// reference slower than the recording host gets its floor scaled down
// proportionally, so the gate catches engine regressions, not slow
// hardware.

import (
	"encoding/json"
	"os"
	"time"

	"telegraphos/internal/sim"
)

// ThroughputFloor is the recorded gate (serialized as BENCH_pdes.floor).
type ThroughputFloor struct {
	// Nodes and OpsPerNode pin the workload the floor was recorded on.
	Nodes      int `json:"nodes"`
	OpsPerNode int `json:"ops_per_node"`
	// MinEventsPerSec is the single-shard floor on the recording host.
	MinEventsPerSec float64 `json:"min_events_per_sec"`
	// RefSpinNS is RefSpin's duration on the recording host; check hosts
	// scale the floor by recorded/measured (clamped to 1).
	RefSpinNS int64  `json:"ref_spin_ns"`
	Note      string `json:"note"`
}

// floorFraction is the recorded floor as a fraction of the measured
// single-shard throughput: generous enough to absorb run-to-run noise
// and CI co-tenancy, tight enough that losing the zero-alloc hot path
// (which costs well over 2×) still trips the gate.
const floorFraction = 0.5

// refSpinIters sizes the reference workload (~tens of ms of pure
// splitmix64 arithmetic — long enough to be stable, short enough for CI).
const refSpinIters = 1 << 24

// RefSpin measures the fixed CPU-bound reference workload used to
// calibrate the floor across hosts.
func RefSpin() time.Duration {
	start := time.Now() //tgvet:allow walltime(host-speed calibration for the CI floor, not simulation state)
	r := sim.NewRNG(1)
	var acc uint64
	for i := 0; i < refSpinIters; i++ {
		acc += r.Uint64()
	}
	elapsed := time.Since(start) //tgvet:allow walltime(paired with the start stamp above)
	if acc == 0 {
		// acc is never 0 for this seed; the branch pins the loop as live.
		panic("experiments: reference spin folded away")
	}
	return elapsed
}

// FloorFor derives the floor from a freshly measured sweep: a fraction
// of the slowest single-shard cell, stamped with this host's reference
// spin.
func FloorFor(rep *PDESReport) *ThroughputFloor {
	slowest := 0.0
	nodes := 0
	for _, p := range rep.Points {
		if p.Shards != 1 {
			continue
		}
		if slowest == 0 || p.EventsPerSec < slowest {
			slowest = p.EventsPerSec
			nodes = p.Nodes
		}
	}
	return &ThroughputFloor{
		Nodes:           nodes,
		OpsPerNode:      rep.OpsPerNode,
		MinEventsPerSec: slowest * floorFraction,
		RefSpinNS:       RefSpin().Nanoseconds(),
		Note:            "single-shard events/sec gate; scaled by ref_spin on slower hosts (scripts/check.sh)",
	}
}

// WriteFloor serializes the floor to path.
func WriteFloor(path string, f *ThroughputFloor) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644) //tgvet:allow tracesink(CI throughput-floor file: host-side bench artifact, not trace data)
}

// ReadFloor loads a recorded floor.
func ReadFloor(path string) (*ThroughputFloor, error) {
	data, err := os.ReadFile(path) //tgvet:allow tracesink(CI throughput-floor file: host-side bench artifact, not trace data)
	if err != nil {
		return nil, err
	}
	f := &ThroughputFloor{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, err
	}
	return f, nil
}

// Scaled reports the floor adjusted for the checking host: when the host
// runs the reference spin slower than the recording host, the floor
// drops proportionally; a faster host still checks the full floor.
func (f *ThroughputFloor) Scaled(refNow time.Duration) float64 {
	if f.RefSpinNS <= 0 || refNow <= 0 {
		return f.MinEventsPerSec
	}
	scale := float64(f.RefSpinNS) / float64(refNow.Nanoseconds())
	if scale > 1 {
		scale = 1
	}
	return f.MinEventsPerSec * scale
}
