package link

import (
	"testing"

	"telegraphos/internal/packet"
	"telegraphos/internal/sim"
)

func testCfg() Config {
	return Config{PropDelay: 10, WordTime: 30, BufPackets: 2}
}

func TestInOrderDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, "t", testCfg())
	const n = 20
	var got []uint64
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Send(p, &packet.Packet{Type: packet.WriteReq, Val: uint64(i)})
		}
	})
	e.SpawnDaemon("receiver", func(p *sim.Proc) {
		for {
			pkt := l.Recv(p, packet.VCRequest)
			got = append(got, pkt.Val)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d packets, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

func TestTransferTiming(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, "t", testCfg())
	var recvAt sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		l.Send(p, &packet.Packet{Type: packet.WriteReq}) // header only: 40 B = 5 words
	})
	e.Spawn("receiver", func(p *sim.Proc) {
		l.Recv(p, packet.VCRequest)
		recvAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 5 words * 30 ns + 10 ns propagation = 160 ns.
	if recvAt != 160 {
		t.Fatalf("packet arrived at %v, want 160ns", recvAt)
	}
}

func TestBackPressureBlocksSender(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, "t", testCfg()) // 2 credits
	var thirdSendDone sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			l.Send(p, &packet.Packet{Type: packet.WriteReq})
		}
		thirdSendDone = p.Now()
	})
	e.Spawn("receiver", func(p *sim.Proc) {
		p.Sleep(10000) // hold buffers: no credits returned until t=10000
		for i := 0; i < 3; i++ {
			l.Recv(p, packet.VCRequest)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if thirdSendDone < 10000 {
		t.Fatalf("third send completed at %v; back-pressure should stall it past 10000", thirdSendDone)
	}
}

func TestVCIsolation(t *testing.T) {
	// A full request VC must not block the reply VC (deadlock avoidance).
	e := sim.NewEngine(1)
	l := New(e, "t", testCfg())
	var replyAt sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 2; i++ { // fill request VC credits
			l.Send(p, &packet.Packet{Type: packet.WriteReq})
		}
		l.Send(p, &packet.Packet{Type: packet.ReadReply}) // must still go through
	})
	e.Spawn("replyReceiver", func(p *sim.Proc) {
		l.Recv(p, packet.VCReply)
		replyAt = p.Now()
	})
	e.SpawnDaemon("requestDrainLater", func(p *sim.Proc) {
		p.Sleep(1_000_000)
		for {
			l.Recv(p, packet.VCRequest)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if replyAt == 0 || replyAt >= 1_000_000 {
		t.Fatalf("reply stuck behind full request VC: arrived at %v", replyAt)
	}
}

func TestPipelinedThroughput(t *testing.T) {
	// A long stream should complete at roughly wire rate: the link is the
	// bottleneck, not per-packet round trips.
	e := sim.NewEngine(1)
	l := New(e, "t", testCfg())
	const n = 100
	var done sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Send(p, &packet.Packet{Type: packet.WriteReq})
		}
	})
	e.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Recv(p, packet.VCRequest)
		}
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	perPacket := 5 * sim.Time(30) // 5 words * WordTime
	want := sim.Time(n)*perPacket + 10
	if done != want {
		t.Fatalf("stream finished at %v, want wire-rate %v", done, want)
	}
}

func TestTryRecvAndCounters(t *testing.T) {
	e := sim.NewEngine(1)
	l := New(e, "t", testCfg())
	if _, ok := l.TryRecv(packet.VCRequest); ok {
		t.Fatal("TryRecv on empty link succeeded")
	}
	e.Spawn("sender", func(p *sim.Proc) {
		l.Send(p, &packet.Packet{Type: packet.WriteReq})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Queued(packet.VCRequest) != 1 {
		t.Fatalf("Queued = %d", l.Queued(packet.VCRequest))
	}
	pkt, ok := l.TryRecv(packet.VCRequest)
	if !ok || pkt.Type != packet.WriteReq {
		t.Fatal("TryRecv failed after delivery")
	}
	if l.SentPackets() != 1 || l.SentWords() != 5 {
		t.Fatalf("counters: %d pkts %d words", l.SentPackets(), l.SentWords())
	}
	if l.BusyTime() != 150 {
		t.Fatalf("busy = %v", l.BusyTime())
	}
	if l.Utilization() <= 0 {
		t.Fatal("utilization should be positive")
	}
	if l.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.WordTime <= 0 || c.BufPackets <= 0 || c.PropDelay < 0 {
		t.Fatalf("bad default config %+v", c)
	}
	// Defensive clamps in New.
	l := New(sim.NewEngine(1), "x", Config{})
	if l.Config().BufPackets != 1 || l.Config().WordTime != 1 {
		t.Fatalf("New did not clamp zero config: %+v", l.Config())
	}
}
