// Fault injection and the link-level retransmission protocol.
//
// A FaultPlan turns the ideal lossless wire into an adversarial one:
// packets may be dropped, duplicated, delayed by random jitter, or held
// back so that later packets overtake them. To keep the external contract
// the rest of the machine depends on — lossless, in-order, exactly-once
// per virtual channel — a faulty link runs a go-back-style ARQ sublayer:
// every frame carries a per-VC sequence number, the receiver acknowledges
// cumulatively and reassembles order with a reorder buffer, duplicates
// are recognized and discarded by sequence number, and unacknowledged
// frames are retransmitted on a timer. This mirrors the fault-tolerant
// link layers of NIC-based protocol work (e.g. APEnet+): the wire is
// unreliable, the link presents reliability upward.
package link

import (
	"telegraphos/internal/packet"
	"telegraphos/internal/sim"
)

// FaultPlan describes the seeded fault environment for every link built
// with it. Probabilities apply per transmission attempt; all randomness
// derives from Seed and the link's name, so a plan is fully deterministic.
type FaultPlan struct {
	// Seed drives every per-link random stream.
	Seed int64
	// DropProb is the probability a transmitted frame vanishes in flight.
	DropProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// ReorderProb is the probability a frame is held back by ReorderDelay,
	// letting frames sent after it arrive first.
	ReorderProb float64
	// JitterMax adds a uniform random [0, JitterMax] to every frame's
	// propagation delay.
	JitterMax sim.Time
	// ReorderDelay is the hold-back applied to reordered frames
	// (default 2 µs when zero and ReorderProb > 0).
	ReorderDelay sim.Time
	// RetryTimeout is the ARQ retransmission timer (a safe default is
	// derived from the link parameters when zero). Spurious retransmits
	// are harmless: the receiver deduplicates by sequence number.
	RetryTimeout sim.Time
}

// Active reports whether the plan injects any fault at all.
func (fp *FaultPlan) Active() bool {
	return fp != nil && (fp.DropProb > 0 || fp.DupProb > 0 || fp.ReorderProb > 0 || fp.JitterMax > 0)
}

// FaultStats counts fault events and recovery work on one link.
type FaultStats struct {
	Dropped     int64 // frames lost in flight
	Duplicated  int64 // frames delivered twice by the wire
	Reordered   int64 // frames held back past their successors
	Retransmits int64 // ARQ retransmission attempts
	Deduped     int64 // duplicate frames discarded by the receiver
	Buffered    int64 // out-of-order frames parked in the reorder buffer
}

// Add accumulates other into s.
func (s *FaultStats) Add(other FaultStats) {
	s.Dropped += other.Dropped
	s.Duplicated += other.Duplicated
	s.Reordered += other.Reordered
	s.Retransmits += other.Retransmits
	s.Deduped += other.Deduped
	s.Buffered += other.Buffered
}

// Total reports the number of injected fault events (not recovery work).
func (s FaultStats) Total() int64 { return s.Dropped + s.Duplicated + s.Reordered }

// frame is one ARQ transfer unit: a packet plus its per-VC sequence number.
type frame struct {
	seq uint64
	pkt *packet.Packet
}

// injector is the per-link fault + ARQ state, split along the wire: the
// sender half (sequence assignment, fault draws, retransmission timers)
// runs on the link's sender engine, the receiver half (dedup, reorder
// buffer, cumulative acks) on its receiver engine. Frames cross on the
// link's forward channel and acks return on the reverse channel, so the
// two halves never touch each other's state directly and the link may
// span two shards.
type injector struct {
	l       *Link
	rng     *sim.RNG // sender-side: all fault draws happen at transmit
	plan    FaultPlan
	timeout sim.Time

	// Sender state, per VC: frames sent but not yet cumulatively acked.
	nextSeq [packet.NumVCs]uint64
	sent    [packet.NumVCs]map[uint64]*packet.Packet
	timers  [packet.NumVCs]map[uint64]sim.Event
	acked   [packet.NumVCs]uint64 // all seq < acked are acknowledged

	// Receiver state, per VC: next expected sequence number and the
	// reorder buffer of frames that arrived early.
	expect [packet.NumVCs]uint64
	held   [packet.NumVCs]map[uint64]*packet.Packet

	sstats FaultStats // sender-side counters (drops, dups, reorders, retransmits)
	rstats FaultStats // receiver-side counters (dedup, reorder buffering)
}

// newInjector builds the ARQ state for l under plan.
func newInjector(l *Link, plan FaultPlan) *injector {
	inj := &injector{
		l:    l,
		rng:  sim.ForkRNG(uint64(plan.Seed), "link/"+l.name),
		plan: plan,
	}
	if inj.plan.ReorderDelay == 0 {
		inj.plan.ReorderDelay = 2 * sim.Microsecond
	}
	inj.timeout = plan.RetryTimeout
	if inj.timeout == 0 {
		// Cover the worst honest one-way delay (propagation + jitter +
		// reorder hold-back + a generous serialization allowance) with
		// margin; too short only costs harmless duplicate retransmits.
		inj.timeout = 4*(l.cfg.PropDelay+inj.plan.JitterMax+inj.plan.ReorderDelay) +
			128*l.cfg.WordTime + 10*sim.Microsecond
	}
	for vc := 0; vc < packet.NumVCs; vc++ {
		inj.sent[vc] = make(map[uint64]*packet.Packet)
		inj.timers[vc] = make(map[uint64]sim.Event)
		inj.held[vc] = make(map[uint64]*packet.Packet)
	}
	return inj
}

// send enters a packet into the ARQ sender after it has cleared the wire:
// it is assigned the next sequence number, transmitted through the faulty
// channel, and guarded by a retransmission timer until acknowledged.
func (inj *injector) send(vc packet.VC, pkt *packet.Packet) {
	seq := inj.nextSeq[vc]
	inj.nextSeq[vc]++
	inj.sent[vc][seq] = pkt
	inj.transmit(vc, frame{seq: seq, pkt: pkt})
}

// transmit pushes one frame attempt through the faulty channel and arms
// the retransmission timer. It runs on the sender engine; deliveries
// cross to the receiver on the link's forward channel (whose minimum
// delay, the propagation delay, bounds every jittered arrival below).
func (inj *injector) transmit(vc packet.VC, f frame) {
	delay := inj.l.cfg.PropDelay + inj.rng.Duration(inj.plan.JitterMax)
	switch {
	case inj.rng.Bool(inj.plan.DropProb):
		inj.sstats.Dropped++
		// The frame vanishes; only the retry timer will resurrect it.
	case inj.rng.Bool(inj.plan.DupProb):
		inj.sstats.Duplicated++
		inj.l.fwd.Send(delay, func() { inj.arrive(vc, f) })
		extra := delay + inj.rng.Duration(inj.plan.JitterMax) + sim.Microsecond
		inj.l.fwd.Send(extra, func() { inj.arrive(vc, f) })
	case inj.rng.Bool(inj.plan.ReorderProb):
		inj.sstats.Reordered++
		inj.l.fwd.Send(delay+inj.plan.ReorderDelay, func() { inj.arrive(vc, f) })
	default:
		inj.l.fwd.Send(delay, func() { inj.arrive(vc, f) })
	}
	inj.armTimer(vc, f)
}

// armTimer schedules a retransmission for f unless it is acked first.
func (inj *injector) armTimer(vc packet.VC, f frame) {
	inj.timers[vc][f.seq].Cancel() // zero/stale handles are inert no-ops
	inj.timers[vc][f.seq] = inj.l.eng.Schedule(inj.timeout, func() {
		if _, live := inj.sent[vc][f.seq]; !live {
			return // acked while the timer event was in flight
		}
		inj.sstats.Retransmits++
		inj.transmit(vc, f)
	})
}

// arrive is the receiver side: deduplicate, restore order, deliver, ack.
// It runs on the receiver engine as a forward-channel message.
func (inj *injector) arrive(vc packet.VC, f frame) {
	switch {
	case f.seq < inj.expect[vc]:
		inj.rstats.Deduped++ // already delivered: a wire dup or a spurious retransmit
	case f.seq > inj.expect[vc]:
		if _, dup := inj.held[vc][f.seq]; dup {
			inj.rstats.Deduped++
		} else {
			inj.rstats.Buffered++
			inj.held[vc][f.seq] = f.pkt
		}
	default:
		inj.deliver(vc, f.pkt)
		inj.expect[vc]++
		for {
			pkt, ok := inj.held[vc][inj.expect[vc]]
			if !ok {
				break
			}
			delete(inj.held[vc], inj.expect[vc])
			inj.deliver(vc, pkt)
			inj.expect[vc]++
		}
	}
	// Cumulative acknowledgement travels the reverse control channel,
	// modeled as a reliable signal with the link's propagation delay.
	upTo := inj.expect[vc]
	inj.l.rev.Send(inj.l.cfg.PropDelay, func() { inj.ack(vc, upTo) })
}

// deliver hands an in-order, exactly-once packet to the link's arrived
// queue — the same path the fault-free wire uses, so consumers are
// unchanged.
func (inj *injector) deliver(vc packet.VC, pkt *packet.Packet) {
	inj.l.push(vc, pkt)
}

// ack processes a cumulative acknowledgement: every frame below upTo is
// released and its retransmission timer canceled.
func (inj *injector) ack(vc packet.VC, upTo uint64) {
	for seq := inj.acked[vc]; seq < upTo; seq++ {
		delete(inj.sent[vc], seq)
		if ev, ok := inj.timers[vc][seq]; ok {
			ev.Cancel()
			delete(inj.timers[vc], seq)
		}
	}
	if upTo > inj.acked[vc] {
		inj.acked[vc] = upTo
	}
}

// unacked reports the number of frames awaiting acknowledgement (telemetry
// and quiescence checking).
func (inj *injector) unacked() int {
	n := 0
	for vc := 0; vc < packet.NumVCs; vc++ {
		n += len(inj.sent[vc])
	}
	return n
}
