// Package link models the point-to-point links of the Telegraphos network:
// unidirectional wires with finite bandwidth, propagation delay, and
// credit-based (back-pressured) flow control per virtual channel.
//
// The Telegraphos switch papers [16, 17] describe VC-level flow control
// with back-pressure and lossless, in-order delivery; this model provides
// exactly that external contract. Each link carries packet.NumVCs virtual
// channels; requests and replies travel on different VCs so that
// request-reply dependency cycles cannot deadlock the fabric.
//
// A link's two endpoints may live on different simulation shards: the
// sender half (credits, wire, ARQ sender) runs on the sending engine, the
// receiver half (arrival queues, ARQ receiver) on the receiving engine,
// and everything that crosses the wire — packets, credits, ARQ acks —
// travels over sim.Chans whose minimum delay is the propagation delay.
// That physical latency is exactly the lookahead the sharded engine uses.
package link

import (
	"fmt"

	"telegraphos/internal/packet"
	"telegraphos/internal/sim"
)

// Config sets a link's physical parameters.
type Config struct {
	// PropDelay is the signal propagation delay (cable length).
	PropDelay sim.Time
	// WordTime is the time to clock one 8-byte word across the wire;
	// a packet occupies the wire for ceil(SizeBytes/8) * WordTime.
	WordTime sim.Time
	// BufPackets is the receiver buffer capacity, in packets, per
	// virtual channel; it is also the sender's credit count.
	BufPackets int
	// Faults, when non-nil and active, makes the wire adversarial
	// (seeded drops, duplicates, jitter, reordering) and enables the ARQ
	// sublayer that restores the lossless in-order contract. See
	// FaultPlan.
	Faults *FaultPlan
}

// DefaultConfig reflects the Telegraphos I ribbon-cable links: roughly
// 30 ns per word (≈ 266 MB/s), 10 ns propagation, and a 4-packet FIFO per
// VC (the HIB has "2+2 Kb of synchronizing FIFOs", Table 1).
func DefaultConfig() Config {
	return Config{PropDelay: 10 * sim.Nanosecond, WordTime: 30 * sim.Nanosecond, BufPackets: 4}
}

// Link is a unidirectional, lossless, in-order link. Senders call Send
// (blocking for a credit and for wire time); the receiving element drains
// it with Recv, which returns the consumed buffer's credit to the sender
// one propagation delay later over the reverse control channel.
type Link struct {
	name    string
	eng     *sim.Engine // sender-side engine
	reng    *sim.Engine // receiver-side engine
	cfg     Config
	wire    *sim.Mutex
	fwd     *sim.Chan // sender -> receiver: packets / ARQ frames
	rev     *sim.Chan // receiver -> sender: credits / ARQ acks
	credits [packet.NumVCs]*sim.Semaphore
	arrived [packet.NumVCs]*sim.Queue[*packet.Packet]
	inj     *injector // nil on a fault-free link

	// Telemetry (sender side).
	sentPackets int64
	sentWords   int64
	busy        sim.Time
}

// New returns an idle link with both endpoints on eng.
func New(eng *sim.Engine, name string, cfg Config) *Link {
	return NewCross(eng, eng, name, cfg)
}

// NewCross returns an idle link whose sender runs on snd and whose
// receiver runs on rcv (which may be the same engine, or two shards of
// one sim.Group).
func NewCross(snd, rcv *sim.Engine, name string, cfg Config) *Link {
	if cfg.BufPackets <= 0 {
		cfg.BufPackets = 1
	}
	if cfg.WordTime <= 0 {
		cfg.WordTime = 1
	}
	l := &Link{name: name, eng: snd, reng: rcv, cfg: cfg, wire: sim.NewMutex(snd)}
	l.fwd = sim.NewChan(snd, rcv, cfg.PropDelay)
	l.rev = sim.NewChan(rcv, snd, cfg.PropDelay)
	for vc := 0; vc < packet.NumVCs; vc++ {
		l.credits[vc] = sim.NewSemaphore(snd, cfg.BufPackets)
		l.arrived[vc] = sim.NewQueue[*packet.Packet](rcv, 0)
	}
	if cfg.Faults.Active() {
		l.inj = newInjector(l, *cfg.Faults)
	}
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Config returns the link's configuration.
func (l *Link) Config() Config { return l.cfg }

// transferTime is the wire occupancy of pkt.
func (l *Link) transferTime(pkt *packet.Packet) sim.Time {
	words := (pkt.SizeBytes() + 7) / 8
	return sim.Time(words) * l.cfg.WordTime
}

// Send transmits pkt, blocking the calling process until a receive buffer
// credit is available on the packet's VC and the wire is free, then for
// the packet's serialization time. The packet is delivered to the far end
// PropDelay later. Per VC, packets arrive in exactly the order sent —
// on a faulty link the ARQ sublayer restores that order and delivers
// exactly once despite drops, duplicates, and reordering on the wire.
// The calling process must run on the link's sender engine.
func (l *Link) Send(p *sim.Proc, pkt *packet.Packet) {
	vc := pkt.Class()
	l.credits[vc].Acquire(p) // back-pressure: wait for far-end buffer space
	l.wire.Lock(p)
	t := l.transferTime(pkt)
	p.Sleep(t)
	l.busy += t
	l.sentPackets++
	l.sentWords += int64((pkt.SizeBytes() + 7) / 8)
	l.wire.Unlock()
	if l.inj != nil {
		l.inj.send(vc, pkt)
		return
	}
	l.fwd.Send(l.cfg.PropDelay, func() {
		l.arrived[vc].TryPut(pkt) // unbounded queue: credits already bound it
	})
}

// Recv removes the next arrived packet on vc, blocking the calling process
// while none is available, and returns the buffer credit to the sender
// over the reverse channel. The calling process must run on the link's
// receiver engine.
func (l *Link) Recv(p *sim.Proc, vc packet.VC) *packet.Packet {
	pkt := l.arrived[vc].Get(p)
	l.rev.Send(l.cfg.PropDelay, l.credits[vc].Release)
	return pkt
}

// TryRecv removes an arrived packet on vc without blocking. It must be
// called from the receiver engine's context.
func (l *Link) TryRecv(vc packet.VC) (*packet.Packet, bool) {
	pkt, ok := l.arrived[vc].TryGet()
	if ok {
		l.rev.Send(l.cfg.PropDelay, l.credits[vc].Release)
	}
	return pkt, ok
}

// Queued reports the number of arrived-but-unconsumed packets on vc.
func (l *Link) Queued(vc packet.VC) int { return l.arrived[vc].Len() }

// SentPackets reports the total packets transmitted.
func (l *Link) SentPackets() int64 { return l.sentPackets }

// SentWords reports the total 8-byte words transmitted.
func (l *Link) SentWords() int64 { return l.sentWords }

// BusyTime reports cumulative wire occupancy (for utilization).
func (l *Link) BusyTime() sim.Time { return l.busy }

// Utilization reports busy time as a fraction of elapsed simulated time.
func (l *Link) Utilization() float64 {
	now := l.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(l.busy) / float64(now)
}

// FaultStats reports the link's injected-fault and recovery counters
// (all zero on a fault-free link). Call it only when the simulation is
// quiescent: it merges the sender- and receiver-side counters.
func (l *Link) FaultStats() FaultStats {
	if l.inj == nil {
		return FaultStats{}
	}
	s := l.inj.sstats
	s.Add(l.inj.rstats)
	return s
}

// Unacked reports ARQ frames still awaiting acknowledgement; after the
// fabric quiesces it must be zero.
func (l *Link) Unacked() int {
	if l.inj == nil {
		return 0
	}
	return l.inj.unacked()
}

// Faulty reports whether the link runs a fault plan.
func (l *Link) Faulty() bool { return l.inj != nil }

// String renders the link name and counters.
func (l *Link) String() string {
	return fmt.Sprintf("link %s: %d pkts, %d words, util %.1f%%", l.name, l.sentPackets, l.sentWords, 100*l.Utilization())
}
