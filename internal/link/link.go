// Package link models the point-to-point links of the Telegraphos network:
// unidirectional wires with finite bandwidth, propagation delay, and
// credit-based (back-pressured) flow control per virtual channel.
//
// The Telegraphos switch papers [16, 17] describe VC-level flow control
// with back-pressure and lossless, in-order delivery; this model provides
// exactly that external contract. Each link carries packet.NumVCs virtual
// channels; requests and replies travel on different VCs so that
// request-reply dependency cycles cannot deadlock the fabric.
//
// A link's two endpoints may live on different simulation shards: the
// sender half (credits, wire timeline, ARQ sender) runs on the sending
// engine, the receiver half (arrival queues, ARQ receiver) on the
// receiving engine, and everything that crosses the wire — packets,
// credits, ARQ acks — travels over sim.Chans whose minimum delay is the
// propagation delay. That physical latency is exactly the lookahead the
// sharded engine uses.
//
// The link is an event-driven state machine, not a set of blocking
// processes: SendEv reserves the wire timeline and calls back when the
// packet has cleared it, and the receiver side hands arrivals to a
// registered notify hook. The blocking Send/Recv wrappers remain for
// process-style users (workload drivers, tests) but the switch and HIB
// hot paths never park a coroutine per packet.
package link

import (
	"fmt"

	"telegraphos/internal/packet"
	"telegraphos/internal/sim"
)

// Config sets a link's physical parameters.
type Config struct {
	// PropDelay is the signal propagation delay (cable length).
	PropDelay sim.Time
	// WordTime is the time to clock one 8-byte word across the wire;
	// a packet occupies the wire for ceil(SizeBytes/8) * WordTime.
	WordTime sim.Time
	// BufPackets is the receiver buffer capacity, in packets, per
	// virtual channel; it is also the sender's credit count.
	BufPackets int
	// Faults, when non-nil and active, makes the wire adversarial
	// (seeded drops, duplicates, jitter, reordering) and enables the ARQ
	// sublayer that restores the lossless in-order contract. See
	// FaultPlan.
	Faults *FaultPlan
}

// DefaultConfig reflects the Telegraphos I ribbon-cable links: roughly
// 30 ns per word (≈ 266 MB/s), 10 ns propagation, and a 4-packet FIFO per
// VC (the HIB has "2+2 Kb of synchronizing FIFOs", Table 1).
func DefaultConfig() Config {
	return Config{PropDelay: 10 * sim.Nanosecond, WordTime: 30 * sim.Nanosecond, BufPackets: 4}
}

// pendingSend is a packet waiting for a flow-control credit on its VC.
type pendingSend struct {
	pkt     *packet.Packet
	onClear func()
}

// wireItem is a packet whose wire slot is reserved but has not yet
// cleared the wire. Wire-clear events fire in reservation order (the
// timeline is strictly increasing), so a FIFO plus one prebound handler
// replaces a per-packet closure.
type wireItem struct {
	vc      packet.VC
	pkt     *packet.Packet
	onClear func()
}

// rxItem is a packet in flight on a fault-free, same-engine wire. Per
// link, fwd-channel deliveries happen in send order (constant propagation
// delay, FIFO channel), so the sender appends here and the prebound
// arrival handler pops the head — no per-packet delivery closure. The
// queue is single-engine state only: on a cross-shard link the two
// endpoints run concurrently within a barrier round, so those links keep
// the per-packet closure (the packet travels inside the sim.Chan
// message). Faulty links also bypass this queue: the ARQ injector
// reorders frames and carries each in its own closure.
type rxItem struct {
	vc  packet.VC
	pkt *packet.Packet
}

// Link is a unidirectional, lossless, in-order link. Senders call SendEv
// (or the blocking Send wrapper); the receiving element drains it with
// TryRecv under a notify hook (or the blocking Recv wrapper), which
// returns the consumed buffer's credit to the sender one propagation
// delay later over the reverse control channel.
type Link struct {
	name string
	eng  *sim.Engine // sender-side engine
	reng *sim.Engine // receiver-side engine
	cfg  Config
	fwd  *sim.Chan // sender -> receiver: packets / ARQ frames
	rev  *sim.Chan // receiver -> sender: credits / ARQ acks
	inj  *injector // nil on a fault-free link

	// Sender state. The wire is a reservation timeline: a credited packet
	// reserves [start, start+transferTime) with start = max(now, wireFree),
	// which serializes transmissions in launch order exactly as the old
	// wire mutex did, without a coroutine parked per packet.
	credits  [packet.NumVCs]int
	sendq    [packet.NumVCs][]pendingSend
	wireFree sim.Time
	creditFn [packet.NumVCs]func() // prebound credit-arrival handlers
	wireq    []wireItem            // reserved wire slots, in clear order
	clearFn  func()                // prebound wire-clear handler

	// In-flight packets on a fault-free wire (see rxItem). The sender
	// appends at wireq head-pop time; the receiver-engine pushFn pops.
	rxq    []rxItem
	rxHead int
	pushFn func() // prebound arrival handler

	// Receiver state: arrived-but-unconsumed packets per VC, plus either
	// blocked Recv callers or an event-driven consumer's notify hook.
	arrived [packet.NumVCs][]*packet.Packet
	waiters [packet.NumVCs][]*sim.Completion
	notify  [packet.NumVCs]func()

	// Telemetry (sender side).
	sentPackets int64
	sentWords   int64
	busy        sim.Time
}

// New returns an idle link with both endpoints on eng.
func New(eng *sim.Engine, name string, cfg Config) *Link {
	return NewCross(eng, eng, name, cfg)
}

// NewCross returns an idle link whose sender runs on snd and whose
// receiver runs on rcv (which may be the same engine, or two shards of
// one sim.Group).
func NewCross(snd, rcv *sim.Engine, name string, cfg Config) *Link {
	if cfg.BufPackets <= 0 {
		cfg.BufPackets = 1
	}
	if cfg.WordTime <= 0 {
		cfg.WordTime = 1
	}
	l := &Link{name: name, eng: snd, reng: rcv, cfg: cfg}
	l.fwd = sim.NewChan(snd, rcv, cfg.PropDelay)
	l.rev = sim.NewChan(rcv, snd, cfg.PropDelay)
	for vc := 0; vc < packet.NumVCs; vc++ {
		vc := packet.VC(vc)
		l.credits[vc] = cfg.BufPackets
		l.creditFn[vc] = func() { l.creditArrive(vc) }
	}
	l.clearFn = l.wireClear
	l.pushFn = l.pushHead
	if cfg.Faults.Active() {
		l.inj = newInjector(l, *cfg.Faults)
	}
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Config returns the link's configuration.
func (l *Link) Config() Config { return l.cfg }

// transferTime is the wire occupancy of pkt.
func (l *Link) transferTime(pkt *packet.Packet) sim.Time {
	words := (pkt.SizeBytes() + 7) / 8
	return sim.Time(words) * l.cfg.WordTime
}

// SendEv transmits pkt from event context on the sender engine. The
// packet waits for a receive-buffer credit on its VC (FIFO per VC), then
// occupies the wire for its serialization time and is delivered to the
// far end PropDelay later. onClear, if non-nil, runs on the sender engine
// at the instant the packet clears the wire — the point at which the old
// blocking Send returned — so callers chain onClear to launch their next
// packet and back-pressure propagates exactly as before. Per VC, packets
// arrive in exactly the order sent — on a faulty link the ARQ sublayer
// restores that order and delivers exactly once despite drops,
// duplicates, and reordering on the wire.
func (l *Link) SendEv(pkt *packet.Packet, onClear func()) {
	vc := pkt.Channel()
	if l.credits[vc] > 0 && len(l.sendq[vc]) == 0 {
		l.launch(vc, pkt, onClear)
		return
	}
	l.sendq[vc] = append(l.sendq[vc], pendingSend{pkt: pkt, onClear: onClear})
}

// launch spends one credit and reserves the next wire slot for pkt.
func (l *Link) launch(vc packet.VC, pkt *packet.Packet, onClear func()) {
	l.credits[vc]--
	start := l.eng.Now()
	if start < l.wireFree {
		start = l.wireFree
	}
	t := l.transferTime(pkt)
	l.wireFree = start + t
	l.busy += t
	l.sentPackets++
	l.sentWords += int64((pkt.SizeBytes() + 7) / 8)
	l.wireq = append(l.wireq, wireItem{vc: vc, pkt: pkt, onClear: onClear})
	l.eng.At(l.wireFree, l.clearFn) //tgvet:allow eventdrop(wire-clear always fires; the queued wireItem is consumed by exactly this event)
}

// wireClear runs when the oldest reserved wire slot's packet finishes
// serializing: the packet enters the wire proper (propagation), and the
// sender's onClear chain fires.
func (l *Link) wireClear() {
	w := l.wireq[0]
	copy(l.wireq, l.wireq[1:])
	l.wireq[len(l.wireq)-1] = wireItem{}
	l.wireq = l.wireq[:len(l.wireq)-1]
	switch {
	case l.inj != nil:
		l.inj.send(w.vc, w.pkt)
	case l.eng == l.reng:
		l.rxq = append(l.rxq, rxItem{vc: w.vc, pkt: w.pkt})
		l.fwd.Send(l.cfg.PropDelay, l.pushFn)
	default:
		vc, pkt := w.vc, w.pkt
		l.fwd.Send(l.cfg.PropDelay, func() { l.push(vc, pkt) })
	}
	if w.onClear != nil {
		w.onClear()
	}
}

// pushHead delivers the oldest in-flight packet on the receiver engine.
func (l *Link) pushHead() {
	it := l.rxq[l.rxHead]
	l.rxq[l.rxHead] = rxItem{}
	l.rxHead++
	if l.rxHead == len(l.rxq) {
		l.rxq = l.rxq[:0]
		l.rxHead = 0
	}
	l.push(it.vc, it.pkt)
}

// creditArrive runs on the sender engine when a consumed buffer's credit
// returns; it launches the oldest queued packet on the VC, if any.
func (l *Link) creditArrive(vc packet.VC) {
	l.credits[vc]++
	if q := l.sendq[vc]; len(q) > 0 {
		s := q[0]
		copy(q, q[1:])
		q[len(q)-1] = pendingSend{}
		l.sendq[vc] = q[:len(q)-1]
		l.launch(vc, s.pkt, s.onClear)
	}
}

// push hands an arrived packet to the receiver side: it joins the VC's
// arrival queue and wakes a blocked Recv caller or fires the notify hook.
func (l *Link) push(vc packet.VC, pkt *packet.Packet) {
	l.arrived[vc] = append(l.arrived[vc], pkt)
	if ws := l.waiters[vc]; len(ws) > 0 {
		c := ws[0]
		l.waiters[vc] = ws[1:]
		c.Complete()
		return
	}
	if fn := l.notify[vc]; fn != nil {
		fn()
	}
}

// SetNotify registers fn to run (on the receiver engine, in the arrival's
// event context) whenever a packet becomes available on vc. The consumer
// drains with TryRecv; a notify with nothing consumed is harmless.
func (l *Link) SetNotify(vc packet.VC, fn func()) { l.notify[vc] = fn }

// Send is the blocking wrapper over SendEv: it parks the calling process
// until the packet clears the wire. The calling process must run on the
// link's sender engine.
func (l *Link) Send(p *sim.Proc, pkt *packet.Packet) {
	c := sim.NewCompletion(l.eng)
	l.SendEv(pkt, c.Complete)
	c.Wait(p)
}

// Recv removes the next arrived packet on vc, blocking the calling process
// while none is available, and returns the buffer credit to the sender
// over the reverse channel. The calling process must run on the link's
// receiver engine.
func (l *Link) Recv(p *sim.Proc, vc packet.VC) *packet.Packet {
	for {
		if pkt, ok := l.TryRecv(vc); ok {
			return pkt
		}
		c := sim.NewCompletion(l.reng)
		l.waiters[vc] = append(l.waiters[vc], c)
		c.Wait(p)
	}
}

// TryRecv removes an arrived packet on vc without blocking, returning the
// consumed buffer's credit to the sender. It must be called from the
// receiver engine's context.
func (l *Link) TryRecv(vc packet.VC) (*packet.Packet, bool) {
	q := l.arrived[vc]
	if len(q) == 0 {
		return nil, false
	}
	pkt := q[0]
	q[0] = nil
	l.arrived[vc] = q[1:]
	l.rev.Send(l.cfg.PropDelay, l.creditFn[vc])
	return pkt, true
}

// Queued reports the number of arrived-but-unconsumed packets on vc.
func (l *Link) Queued(vc packet.VC) int { return len(l.arrived[vc]) }

// SentPackets reports the total packets transmitted.
func (l *Link) SentPackets() int64 { return l.sentPackets }

// SentWords reports the total 8-byte words transmitted.
func (l *Link) SentWords() int64 { return l.sentWords }

// BusyTime reports cumulative wire occupancy (for utilization).
func (l *Link) BusyTime() sim.Time { return l.busy }

// Utilization reports busy time as a fraction of elapsed simulated time.
func (l *Link) Utilization() float64 {
	now := l.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(l.busy) / float64(now)
}

// FaultStats reports the link's injected-fault and recovery counters
// (all zero on a fault-free link). Call it only when the simulation is
// quiescent: it merges the sender- and receiver-side counters.
func (l *Link) FaultStats() FaultStats {
	if l.inj == nil {
		return FaultStats{}
	}
	s := l.inj.sstats
	s.Add(l.inj.rstats)
	return s
}

// Unacked reports ARQ frames still awaiting acknowledgement; after the
// fabric quiesces it must be zero.
func (l *Link) Unacked() int {
	if l.inj == nil {
		return 0
	}
	return l.inj.unacked()
}

// Faulty reports whether the link runs a fault plan.
func (l *Link) Faulty() bool { return l.inj != nil }

// String renders the link name and counters.
func (l *Link) String() string {
	return fmt.Sprintf("link %s: %d pkts, %d words, util %.1f%%", l.name, l.sentPackets, l.sentWords, 100*l.Utilization())
}
