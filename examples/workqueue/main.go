// Work queue: dynamic load balancing over Telegraphos remote atomics —
// the "simple and efficient synchronization" §2.2.3 promises. A bag of
// unevenly-sized tasks lives in shared memory; workers on every node
// claim tasks with a single user-level fetch&increment (8 µs) instead of
// an OS-mediated queue server (hundreds of µs per claim). A spinlock
// protects a shared results accumulator, and the final barrier's
// embedded FENCE publishes everything.
package main

import (
	"fmt"

	tg "telegraphos"
)

const (
	nodes = 4
	tasks = 64
)

func main() {
	c := tg.NewCluster(tg.WithNodes(nodes))

	next := c.AllocShared(0, 8)           // fetch&inc task cursor
	done := c.AllocShared(0, 8)           // completed-task count
	sum := c.AllocShared(0, 8)            // accumulated result
	taskCost := c.AllocShared(0, 8*tasks) // per-task work (simulated µs)
	lock := c.NewLock(0)
	bar := c.NewBarrier(0, nodes)

	// Node 0 publishes the task sizes (skewed: a few huge tasks).
	sizes := make([]uint64, tasks)
	for i := range sizes {
		sizes[i] = uint64(20 + (i%7)*30)
		if i%13 == 0 {
			sizes[i] = 400
		}
	}

	perNode := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		w := bar.Participant()
		c.Spawn(n, "worker", func(ctx *tg.Ctx) {
			if n == 0 {
				for i, s := range sizes {
					ctx.Store(taskCost+tg.VAddr(8*i), s)
				}
			}
			w.Wait(ctx) // tasks published (barrier embeds FENCE)

			for {
				t := ctx.FetchAndInc(next) // claim a task, user-level
				if t >= tasks {
					break
				}
				cost := ctx.Load(taskCost + tg.VAddr(8*t))
				ctx.Compute(tg.Time(cost) * tg.Microsecond) // do the work
				lock.Acquire(ctx)
				ctx.Store(sum, ctx.Load(sum)+cost)
				ctx.Store(done, ctx.Load(done)+1)
				lock.Release(ctx)
				perNode[n]++
			}
			w.Wait(ctx)
			if n == 0 {
				total := ctx.Load(done)
				s := ctx.Load(sum)
				fmt.Printf("completed %d/%d tasks, work checksum %d\n", total, tasks, s)
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}

	var want uint64
	for _, s := range sizes {
		want += s
	}
	fmt.Printf("expected checksum          %d\n", want)
	fmt.Printf("tasks claimed per node:    %v  (dynamic balancing)\n", perNode)
	fmt.Printf("elapsed:                   %v\n", c.Eng.Now())
	fmt.Printf("fetch&inc claims issued:   %d\n",
		c.Nodes[0].HIB.Counters.Get("atomic-fetch&inc"))
}
