// SOR: a red/black successive-over-relaxation kernel — the kind of
// scientific computation the paper's introduction motivates ("high
// performance scientific computing ... engineering design and
// simulation"). The grid is partitioned into horizontal strips, one per
// workstation; only the strip boundary rows are shared. Boundary rows
// live in update-coherent replicated pages, so each sweep's boundary
// values are eagerly pushed to the neighbours, and the barrier (built on
// remote fetch&inc with an embedded FENCE) separates sweeps.
//
// The same kernel is also run with unreplicated boundaries (every
// boundary access a blocking 7.2 µs remote read) to show what the
// eager-update machinery buys.
package main

import (
	"fmt"

	tg "telegraphos"
)

const (
	nodes  = 4
	cols   = 64 // words per boundary row
	sweeps = 4
)

func main() {
	fmt.Printf("SOR %d nodes, %d cols, %d sweeps\n", nodes, cols, sweeps)
	repl := run(true)
	remote := run(false)
	fmt.Printf("replicated boundaries (eager update): %v\n", repl)
	fmt.Printf("remote-read boundaries:               %v\n", remote)
	fmt.Printf("eager update speedup:                 %.2fx\n", float64(remote)/float64(repl))
}

func run(replicate bool) tg.Time {
	c := tg.NewCluster(tg.WithNodes(nodes))
	var u *tg.UpdateCoherence
	if replicate {
		u = c.AttachUpdateCoherence(tg.CountersCached)
	}

	// One shared boundary row below each strip (strip i's bottom row is
	// read by strip i+1 and vice versa). Row i is homed on node i.
	rows := make([]tg.VAddr, nodes)
	for i := range rows {
		rows[i] = c.AllocShared(tg.NodeID(i), 8*cols)
		if replicate {
			// Replicate each boundary row on its owner and the reader
			// below/above it.
			readers := []int{i}
			if i+1 < nodes {
				readers = append(readers, i+1)
			}
			if i-1 >= 0 {
				readers = append(readers, i-1)
			}
			u.SharePage(rows[i], tg.NodeID(i), readers)
		}
	}

	bar := c.NewBarrier(0, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		w := bar.Participant()
		c.Spawn(i, "sor", func(ctx *tg.Ctx) {
			// Private strip interior.
			interior := c.AllocPrivate(i, 8*cols)
			for s := 0; s < sweeps; s++ {
				// Relax the interior against the neighbour boundaries.
				for col := 0; col < cols; col++ {
					v := ctx.Load(interior + tg.VAddr(8*col))
					var up, down uint64
					if i > 0 {
						up = ctx.Load(rows[i-1] + tg.VAddr(8*col))
					}
					if i < nodes-1 {
						down = ctx.Load(rows[i+1] + tg.VAddr(8*col))
					}
					ctx.Compute(150 * tg.Nanosecond) // FLOPs
					ctx.Store(interior+tg.VAddr(8*col), (v+up+down)/3+1)
				}
				// Publish our boundary row (our strip's edge values).
				for col := 0; col < cols; col++ {
					v := ctx.Load(interior + tg.VAddr(8*col))
					ctx.Store(rows[i]+tg.VAddr(8*col), v)
				}
				w.Wait(ctx) // barrier embeds the FENCE
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	return c.Eng.Now()
}
