// Producer/consumer: the communication style the paper's eager-update
// machinery targets (§2.2.7, §2.3). A producer on node 0 updates a
// replicated page (owned by node 2) under the owner-based update
// protocol; consumers read their local copies the moment the flag
// flips — no page faults, no OS, no request/response latency.
//
// The same exchange is run three ways:
//
//   - update-coherent shared memory with FENCE before the flag (§2.3.5);
//   - the same without FENCE — the flag can outrun the data reflections
//     and consumers observe stale values (the paper's flag/data example);
//   - OS-mediated message passing, whose per-message traps dwarf the
//     data transfer for small updates.
package main

import (
	"fmt"

	tg "telegraphos"
)

const (
	words = 16 // small updates: the case eager updating is built for
	iters = 8
	nodes = 4
)

func main() {
	withFence, stale := overTelegraphos(true)
	noFence, staleNo := overTelegraphos(false)
	osTime := overOSMessaging()
	fmt.Printf("update-coherent + FENCE:     %-10v stale reads: %d\n", withFence, stale)
	fmt.Printf("update-coherent, no FENCE:   %-10v stale reads: %d  <- §2.3.5 anomaly\n", noFence, staleNo)
	fmt.Printf("OS-mediated messaging:       %-10v\n", osTime)
	fmt.Printf("speedup over OS messaging:   %.1fx\n", float64(osTime)/float64(withFence))
}

func overTelegraphos(useFence bool) (tg.Time, int) {
	// Telegraphos II placement: local copies are cheap main-memory reads.
	c := tg.NewCluster(tg.WithNodes(nodes), tg.WithPlacement(tg.PlacementMain))
	u := c.AttachUpdateCoherence(tg.CountersCached)
	data := c.AllocShared(0, 8*words)
	// The page's serializing owner is node 2 — the producer's updates
	// are forwarded there and reflected to all copies (§2.3.1).
	u.SharePage(data, 2, []int{0, 1, 2, 3})
	flag := c.AllocShared(1, 8) // plain word homed at consumer 1

	c.Spawn(0, "producer", func(ctx *tg.Ctx) {
		for it := 1; it <= iters; it++ {
			for w := 0; w < words; w++ {
				ctx.Store(data+tg.VAddr(8*w), uint64(it*1000+w))
			}
			if useFence {
				ctx.Fence() // wait for every reflection before the flag
			}
			ctx.Store(flag, uint64(it))
			ctx.Compute(100 * tg.Microsecond) // produce the next block
		}
	})

	stale := 0
	for n := 1; n < nodes; n++ {
		n := n
		c.Spawn(n, "consumer", func(ctx *tg.Ctx) {
			for it := 1; it <= iters; it++ {
				for ctx.Load(flag) < uint64(it) {
					ctx.Compute(tg.Microsecond)
				}
				for w := 0; w < words; w++ {
					if v := ctx.Load(data + tg.VAddr(8*w)); v < uint64(it*1000) {
						stale++
					}
				}
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	return c.Eng.Now(), stale
}

func overOSMessaging() tg.Time {
	c := tg.NewCluster(tg.WithNodes(nodes))
	sys := c.NewMsgSystem()

	c.Spawn(0, "producer", func(ctx *tg.Ctx) {
		buf := make([]uint64, words)
		for it := 1; it <= iters; it++ {
			for w := range buf {
				buf[w] = uint64(it*1000 + w)
			}
			for n := tg.NodeID(1); n < nodes; n++ {
				sys.Send(ctx, n, 1, buf)
			}
			ctx.Compute(100 * tg.Microsecond)
		}
	})
	for n := 1; n < nodes; n++ {
		n := n
		c.Spawn(n, "consumer", func(ctx *tg.Ctx) {
			for it := 1; it <= iters; it++ {
				sys.Recv(ctx, 1)
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	return c.Eng.Now()
}
