// Hotspot profiling: the monitoring use of the page access counters
// (§2.2.6) — "by setting the counters to very large values and
// periodically reading them, the system can monitor the page access,
// find hot-spots, display statistics". A workload touches eight remote
// pages with a skewed distribution; the profiler samples the counters
// and prints the hot-page table, then the hottest pages are replicated
// and the workload re-run to show the payoff.
package main

import (
	"fmt"

	tg "telegraphos"
)

const pages = 8

func main() {
	// --- Phase 1: profile the remote-access pattern.
	c := tg.NewCluster(tg.WithNodes(2))
	vas := allocPages(c)
	prof := c.NewProfiler(0, 200*tg.Microsecond, 50*tg.Millisecond, vas...)
	workload(c, vas)
	if err := c.Run(); err != nil {
		panic(err)
	}
	prof.Stop()
	unoptimized := c.Eng.Now()
	fmt.Println("access profile (from the HIB page access counters):")
	fmt.Print(prof.Report())

	// --- Phase 2: replicate the two hottest pages and re-run.
	hot := prof.HotPages()[:2]
	c2 := tg.NewCluster(tg.WithNodes(2))
	u := c2.AttachUpdateCoherence(tg.CountersCached)
	vas2 := allocPages(c2)
	for _, gp := range hot {
		va := tg.VAddr(0x4000_0000) + tg.VAddr(uint64(gp.Page)*uint64(c2.PageSize()))
		u.SharePage(va, 1, []int{0, 1})
		fmt.Printf("replicating hot page %v\n", gp)
	}
	workload(c2, vas2)
	if err := c2.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\nworkload time unoptimized:        %v\n", unoptimized)
	fmt.Printf("after counter-guided replication: %v (%.1fx faster)\n",
		c2.Eng.Now(), float64(unoptimized)/float64(c2.Eng.Now()))
}

func allocPages(c *tg.Cluster) []tg.VAddr {
	vas := make([]tg.VAddr, pages)
	for i := range vas {
		vas[i] = c.AllocShared(1, c.PageSize()) // all homed on node 1
	}
	return vas
}

// workload reads the eight pages with a strong skew: pages 2 and 5 take
// most of the traffic.
func workload(c *tg.Cluster, vas []tg.VAddr) {
	c.Spawn(0, "app", func(ctx *tg.Ctx) {
		for round := 0; round < 120; round++ {
			for pg := 0; pg < pages; pg++ {
				n := 1
				if pg == 2 || pg == 5 {
					n = 8
				}
				for k := 0; k < n; k++ {
					_ = ctx.Load(vas[pg] + tg.VAddr(8*((round+k)%32)))
				}
			}
		}
	})
}
