// Remote paging: the §2.2.6/[21] use case. A process whose working set
// exceeds local memory pages either to disk (10 ms a fault) or to the
// idle memory of another workstation through the Telegraphos remote-copy
// engine (~150 µs a page). The sweep shows the gap across memory
// pressures.
package main

import (
	"fmt"

	tg "telegraphos"
)

func main() {
	fmt.Println("remote-memory paging vs disk paging ([21])")
	fmt.Printf("%-14s %-14s %-14s %-10s %s\n", "local frames", "disk", "remote mem", "speedup", "faults")
	refs := tg.GenPageRefs(7, 500, 48, 0.75, 0.3)
	for _, frames := range []int{6, 12, 24, 40} {
		disk, faults := run(tg.PageToDisk, frames, refs)
		remote, _ := run(tg.PageToRemoteMemory, frames, refs)
		fmt.Printf("%-14d %-14v %-14v %-10.1fx %d\n",
			frames, disk, remote, float64(disk)/float64(remote), faults)
	}
}

func run(backend tg.PagingBackend, frames int, refs []tg.PageRef) (tg.Time, int) {
	c := tg.NewCluster(tg.WithNodes(2))
	res, err := c.RunPaging(0, tg.PagingConfig{
		LocalFrames: frames,
		Backend:     backend,
		Server:      1,
	}, refs)
	if err != nil {
		panic(err)
	}
	return res.Elapsed, res.Faults
}
