// Quickstart: a two-workstation Telegraphos cluster exercising the
// paper's basic user-level operations — remote write, remote read,
// FENCE, remote atomics, and remote copy — and printing their measured
// latencies next to the paper's §3.2 numbers.
package main

import (
	"fmt"

	tg "telegraphos"
)

func main() {
	c := tg.NewCluster(tg.WithNodes(2))

	// One page of shared memory homed on node 1.
	x := c.AllocShared(1, 4096)
	counter := c.AllocShared(1, 8)

	c.Spawn(0, "quickstart", func(ctx *tg.Ctx) {
		// A remote write is a plain store: the processor continues as
		// soon as the HIB latches it.
		start := ctx.Now()
		ctx.Store(x, 42)
		fmt.Printf("remote write issued in      %v   (paper: <0.5 µs issue)\n", ctx.Now()-start)

		// FENCE waits until every outstanding write completed remotely.
		start = ctx.Now()
		ctx.Fence()
		fmt.Printf("fence completed in          %v\n", ctx.Now()-start)

		// A remote read is a plain load; the processor stalls for the
		// round trip.
		start = ctx.Now()
		v := ctx.Load(x)
		fmt.Printf("remote read returned %d in  %v   (paper: 7.2 µs)\n", v, ctx.Now()-start)

		// A long write stream settles at the network transfer rate.
		const n = 1000
		start = ctx.Now()
		for i := 0; i < n; i++ {
			ctx.Store(x, uint64(i))
		}
		ctx.Fence()
		fmt.Printf("write stream:               %.2f µs/op (paper: 0.70 µs)\n",
			(ctx.Now()-start).Micros()/n)

		// Remote atomics, launched from user level through a
		// Telegraphos context + shadow addressing + key (§2.2.4).
		start = ctx.Now()
		old := ctx.FetchAndInc(counter)
		fmt.Printf("fetch&inc (was %d) in       %v\n", old, ctx.Now()-start)

		// Non-blocking remote copy (prefetch) of 128 words.
		local := c.AllocShared(0, 1024)
		start = ctx.Now()
		ctx.RemoteCopy(local, x, 128)
		launch := ctx.Now() - start
		ctx.Fence()
		fmt.Printf("remote copy: launch %v, complete %v\n", launch, ctx.Now()-start)
	})

	if err := c.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\ntotal simulated time: %v\n", c.Eng.Now())
}
