// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact, wrapping the corresponding experiment), plus
// per-primitive micro-benchmarks and ablations of the design choices
// DESIGN.md calls out. All latencies reported via ReportMetric are
// *simulated* time; wall-clock ns/op measures the simulator itself.
//
// Run with: go test -bench=. -benchmem
package telegraphos_test

import (
	"testing"

	tg "telegraphos"
	"telegraphos/internal/experiments"
	"telegraphos/internal/packet"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
)

// benchExperiment wraps an experiment as a benchmark and asserts that
// the paper's shape holds on the final run.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run := experiments.Get(id)
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = run()
	}
	for _, row := range r.Rows {
		if !row.Match {
			b.Fatalf("%s: %s — paper %q, measured %q", id, row.Name, row.Paper, row.Measured)
		}
	}
}

// One benchmark per paper artifact (see DESIGN.md §4).
func BenchmarkE1LatencyTable(b *testing.B)        { benchExperiment(b, "E1") }  // §3.2 table
func BenchmarkE2WriteBatches(b *testing.B)        { benchExperiment(b, "E2") }  // §3.2 in-text
func BenchmarkE3GateCountTable(b *testing.B)      { benchExperiment(b, "E3") }  // Table 1
func BenchmarkE4Figure2Divergence(b *testing.B)   { benchExperiment(b, "E4") }  // Figure 2
func BenchmarkE5CounterAnomalies(b *testing.B)    { benchExperiment(b, "E5") }  // §2.3.2-3
func BenchmarkE6CounterCAMSizing(b *testing.B)    { benchExperiment(b, "E6") }  // §2.3.4
func BenchmarkE7FenceConsistency(b *testing.B)    { benchExperiment(b, "E7") }  // §2.3.5
func BenchmarkE8Galactica121(b *testing.B)        { benchExperiment(b, "E8") }  // §2.4
func BenchmarkE9AlarmReplication(b *testing.B)    { benchExperiment(b, "E9") }  // §2.2.6/[22]
func BenchmarkE10RemotePaging(b *testing.B)       { benchExperiment(b, "E10") } // §2.2.6/[21]
func BenchmarkE11Substrates(b *testing.B)         { benchExperiment(b, "E11") } // §1/§2.1
func BenchmarkE12UpdateVsInvalidate(b *testing.B) { benchExperiment(b, "E12") } // §2.3.6
func BenchmarkE13SwitchLoad(b *testing.B)         { benchExperiment(b, "E13") } // [16,17]
func BenchmarkE14LaunchCost(b *testing.B)         { benchExperiment(b, "E14") } // §2.2.4-5

// --- Per-primitive micro-benchmarks (simulated latency in the metric).

func BenchmarkRemoteWriteStream(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		c := tg.NewCluster(tg.WithNodes(2))
		x := c.AllocShared(1, 8)
		const ops = 2000
		c.Spawn(0, "w", func(ctx *tg.Ctx) {
			ctx.Store(x, 0)
			start := ctx.Now()
			for k := 0; k < ops; k++ {
				ctx.Store(x, uint64(k))
			}
			ctx.Fence()
			us = (ctx.Now() - start).Micros() / ops
		})
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us, "sim-us/write")
}

func BenchmarkRemoteRead(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		c := tg.NewCluster(tg.WithNodes(2))
		x := c.AllocShared(1, 8)
		const ops = 500
		c.Spawn(0, "r", func(ctx *tg.Ctx) {
			ctx.Load(x)
			start := ctx.Now()
			for k := 0; k < ops; k++ {
				ctx.Load(x)
			}
			us = (ctx.Now() - start).Micros() / ops
		})
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us, "sim-us/read")
}

func BenchmarkRemoteFetchAndInc(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		c := tg.NewCluster(tg.WithNodes(2))
		x := c.AllocShared(1, 8)
		const ops = 300
		c.Spawn(0, "a", func(ctx *tg.Ctx) {
			ctx.FetchAndInc(x)
			start := ctx.Now()
			for k := 0; k < ops; k++ {
				ctx.FetchAndInc(x)
			}
			us = (ctx.Now() - start).Micros() / ops
		})
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us, "sim-us/atomic")
}

func BenchmarkRemoteCopyPage(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		c := tg.NewCluster(tg.WithNodes(2))
		src := c.AllocShared(1, 8192)
		dst := c.AllocShared(0, 8192)
		c.Spawn(0, "c", func(ctx *tg.Ctx) {
			start := ctx.Now()
			ctx.RemoteCopy(dst, src, 1024)
			ctx.Fence()
			us = (ctx.Now() - start).Micros()
		})
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us, "sim-us/page-copy")
}

func BenchmarkUserLevelChannel(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		c := tg.NewCluster(tg.WithNodes(2), tg.WithPlacement(tg.PlacementMain))
		ch := c.NewChannel(1, 256)
		const msgs = 100
		c.Spawn(0, "p", func(ctx *tg.Ctx) {
			buf := make([]uint64, 16)
			for k := 0; k < msgs; k++ {
				ch.Send(ctx, buf)
			}
		})
		c.Spawn(1, "c", func(ctx *tg.Ctx) {
			start := ctx.Now()
			for k := 0; k < msgs; k++ {
				ch.Recv(ctx, 16)
			}
			us = (ctx.Now() - start).Micros() / msgs
		})
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us, "sim-us/msg")
}

// --- Ablations (DESIGN.md §6).

// BenchmarkAblationWriteQueueDepth shows how the HIB's outgoing FIFO
// depth shapes the E2 burst behaviour: deeper queues absorb longer
// bursts at CPU issue rate.
func BenchmarkAblationWriteQueueDepth(b *testing.B) {
	for _, depth := range []int{1, 8, 32, 128} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				cfg := params.Default(2)
				cfg.Sizing.HIBWriteQueue = depth
				c := tg.NewCluster(tg.WithConfig(cfg))
				x := c.AllocShared(1, 8)
				c.Spawn(0, "w", func(ctx *tg.Ctx) {
					ctx.Store(x, 0)
					start := ctx.Now()
					for k := 0; k < 100; k++ {
						ctx.Store(x, uint64(k))
					}
					us = (ctx.Now() - start).Micros()
				})
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(us, "sim-us/100-writes")
		})
	}
}

// BenchmarkAblationPlacement compares the Telegraphos I (HIB board) and
// Telegraphos II (main memory) placements for local shared reads —
// the §2.2.1 trade-off.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, pl := range []tg.Placement{tg.PlacementHIB, tg.PlacementMain} {
		pl := pl
		b.Run(pl.String(), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				c := tg.NewCluster(tg.WithNodes(2), tg.WithPlacement(pl))
				x := c.AllocShared(0, 8)
				const ops = 500
				c.Spawn(0, "r", func(ctx *tg.Ctx) {
					ctx.Load(x)
					start := ctx.Now()
					for k := 0; k < ops; k++ {
						ctx.Load(x)
					}
					us = (ctx.Now() - start).Micros() / ops
				})
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(us, "sim-us/local-shared-read")
		})
	}
}

// BenchmarkAblationLaunchPath compares the user-level special-operation
// launch with the OS-trap launch (§2.2.4 vs §2.2.5).
func BenchmarkAblationLaunchPath(b *testing.B) {
	run := func(b *testing.B, viaOS bool) {
		var us float64
		for i := 0; i < b.N; i++ {
			c := tg.NewCluster(tg.WithNodes(2))
			x := c.AllocShared(1, 8)
			const ops = 200
			c.Spawn(0, "a", func(ctx *tg.Ctx) {
				ctx.FetchAndInc(x)
				start := ctx.Now()
				for k := 0; k < ops; k++ {
					if viaOS {
						ctx.AtomicViaOS(packet.FetchAndInc, x, 0, 0)
					} else {
						ctx.FetchAndInc(x)
					}
				}
				us = (ctx.Now() - start).Micros() / ops
			})
			if err := c.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(us, "sim-us/atomic")
	}
	b.Run("user-level", func(b *testing.B) { run(b, false) })
	b.Run("os-trap", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCounterMode compares write throughput on a replicated
// page across the three pending-write counter configurations.
func BenchmarkAblationCounterMode(b *testing.B) {
	modes := []tg.CounterMode{tg.CountersOff, tg.CountersCached, tg.CountersInfinite}
	for _, m := range modes {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				c := tg.NewCluster(tg.WithNodes(3))
				u := c.AttachUpdateCoherence(m)
				x := c.AllocShared(0, 4096)
				u.SharePage(x, 0, []int{0, 1, 2})
				const ops = 200
				c.Spawn(1, "w", func(ctx *tg.Ctx) {
					start := ctx.Now()
					for k := 0; k < ops; k++ {
						ctx.Store(x+tg.VAddr(8*(k%64)), uint64(k))
						ctx.Compute(2 * sim.Microsecond)
					}
					ctx.Fence()
					us = (ctx.Now() - start).Micros() / ops
				})
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(us, "sim-us/shared-write")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationChainHops measures remote-read latency as the number
// of switch hops between the two endpoints grows (the multi-switch
// ribbon-cable configuration of Figure 1).
func BenchmarkAblationChainHops(b *testing.B) {
	for _, far := range []int{1, 3, 7, 15} {
		far := far
		b.Run("nodes-apart-"+itoa(far), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				c := tg.NewCluster(tg.WithNodes(16), tg.WithTopology("chain"), tg.WithChainPerSwitch(2))
				x := c.AllocShared(tg.NodeID(far), 8)
				const ops = 100
				c.Spawn(0, "r", func(ctx *tg.Ctx) {
					ctx.Load(x)
					start := ctx.Now()
					for k := 0; k < ops; k++ {
						ctx.Load(x)
					}
					us = (ctx.Now() - start).Micros() / ops
				})
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(us, "sim-us/read")
		})
	}
}
