// Package telegraphos is a simulation-backed reproduction of
// "Telegraphos: High-Performance Networking for Parallel Processing on
// Workstation Clusters" (Markatos & Katevenis, HPCA-2, 1996).
//
// It provides a deterministic discrete-event model of a Telegraphos
// workstation cluster — CPUs, TurboChannel I/O buses, Host Interface
// Boards (HIBs), links and switches — together with the paper's
// user-level shared-memory operations (remote read/write, remote copy,
// remote atomics, page access counters, eager-update multicast, FENCE),
// its owner-based counter coherence protocol, and the software baselines
// it compares against (virtual shared memory, OS-mediated messaging,
// Galactica-style ring updates).
//
// # Quick start
//
//	c := telegraphos.NewCluster(telegraphos.WithNodes(2))
//	x := c.AllocShared(1, 8) // one word homed on node 1
//	c.Spawn(0, "hello", func(ctx *telegraphos.Ctx) {
//		ctx.Store(x, 42) // a user-level remote write: ~0.5 µs
//		ctx.Fence()      // wait for global visibility
//		v := ctx.Load(x) // a blocking remote read: ~7.2 µs
//		_ = v
//	})
//	if err := c.Run(); err != nil { ... }
//
// Programs run as coroutine processes on simulated CPUs; all latencies
// are simulated nanoseconds, calibrated to the paper's measured numbers
// (0.70 µs remote write, 7.2 µs remote read).
package telegraphos

import (
	"telegraphos/internal/addrspace"
	"telegraphos/internal/coherence"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/link"
	"telegraphos/internal/msg"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
	"telegraphos/internal/tsync"
)

// Re-exported fundamental types.
type (
	// Ctx is a running program's handle to its simulated CPU.
	Ctx = cpu.Ctx
	// VAddr is a program virtual address.
	VAddr = addrspace.VAddr
	// NodeID identifies a workstation in the cluster.
	NodeID = addrspace.NodeID
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Lock is a spinlock over remote compare-and-swap.
	Lock = tsync.Lock
	// Barrier is a counter barrier over remote fetch-and-increment.
	Barrier = tsync.Barrier
	// Channel is a user-level message channel over remote writes.
	Channel = msg.Channel
	// Config is the full machine description.
	Config = params.Config
	// Placement selects where locally-homed shared data lives (§2.2.1).
	Placement = params.Placement
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Shared-data placements (§2.2.1).
const (
	// PlacementHIB is Telegraphos I: shared data on the HIB board.
	PlacementHIB = params.SharedOnHIB
	// PlacementMain is Telegraphos II: shared data in main memory.
	PlacementMain = params.SharedInMain
)

// Option customizes the cluster configuration.
type Option func(*Config)

// WithNodes sets the number of workstations (default 2).
func WithNodes(n int) Option { return func(c *Config) { c.Nodes = n } }

// WithSeed sets the deterministic random seed.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithPlacement selects the Telegraphos I or II shared-data placement.
func WithPlacement(p Placement) Option { return func(c *Config) { c.Placement = p } }

// WithTopology selects the fabric: "pair", "star" (default) or "chain".
func WithTopology(kind string) Option { return func(c *Config) { c.Topology = kind } }

// WithChainPerSwitch sets nodes per switch for the chain topology.
func WithChainPerSwitch(k int) Option { return func(c *Config) { c.ChainPerSwitch = k } }

// WithConfig replaces the entire configuration (advanced use).
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// FaultPlan is a seeded link-fault environment: drops, duplicates,
// jitter, and reordering on every fabric link, recovered by the
// link-level retransmission layer so the cluster's memory semantics
// survive. See link.FaultPlan for the knobs.
type FaultPlan = link.FaultPlan

// WithFaultPlan installs a fault plan on every link of the fabric. The
// plan is fully deterministic: the same plan (and cluster seed) always
// produces the same packet-level schedule.
func WithFaultPlan(fp FaultPlan) Option {
	return func(c *Config) { c.Link.Faults = &fp }
}

// Cluster is a simulated Telegraphos machine. It embeds the assembly
// layer, so all of core.Cluster's methods (AllocShared, AllocPrivate,
// Spawn, Run, RemapShared, ...) are available directly.
type Cluster struct {
	*core.Cluster
}

// NewCluster builds a cluster with the calibrated default configuration,
// adjusted by opts.
func NewCluster(opts ...Option) *Cluster {
	cfg := params.Default(2)
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Nodes == 2 && cfg.Topology == "" {
		cfg.Topology = "star"
	}
	return &Cluster{Cluster: core.New(cfg)}
}

// NewLock allocates a spinlock homed on node home.
func (c *Cluster) NewLock(home NodeID) Lock { return tsync.NewLock(c.Cluster, home) }

// NewBarrier allocates a barrier for n participants homed on node home.
func (c *Cluster) NewBarrier(home NodeID, n int) *Barrier {
	return tsync.NewBarrier(c.Cluster, home, n)
}

// NewChannel allocates a user-level message channel delivered to node
// home with a ring of capWords payload words.
func (c *Cluster) NewChannel(home NodeID, capWords int) *Channel {
	return msg.NewChannel(c.Cluster, home, capWords)
}

// CounterMode selects the pending-write counter implementation of the
// update-coherence protocol (§2.3.3–§2.3.4).
type CounterMode = coherence.CounterMode

// Counter modes.
const (
	// CountersOff is Telegraphos I (no counters; chaotic writers may see
	// the §2.3.2 anomalies).
	CountersOff = coherence.CountersOff
	// CountersCached uses the §2.3.4 CAM cache.
	CountersCached = coherence.CountersCached
	// CountersInfinite is the idealized per-word-counter design.
	CountersInfinite = coherence.CountersInfinite
)

// UpdateCoherence is the paper's owner-based update protocol attached to
// a cluster.
type UpdateCoherence = coherence.Update

// AttachUpdateCoherence installs the §2.3 update protocol on the cluster.
// Call SharePage on the result to replicate pages.
func (c *Cluster) AttachUpdateCoherence(mode CounterMode) *UpdateCoherence {
	return coherence.NewUpdate(c.Cluster, mode)
}

// DefaultConfig exposes the calibrated configuration for n nodes.
func DefaultConfig(n int) Config { return params.Default(n) }
