package telegraphos

import (
	"telegraphos/internal/addrspace"
	"telegraphos/internal/msg"
	"telegraphos/internal/paging"
	"telegraphos/internal/profile"
	"telegraphos/internal/sim"
)

// MsgSystem is the OS-mediated (PVM/sockets-style) messaging baseline:
// every send and receive traps into the kernel and delivery raises an
// interrupt. Use it to feel the overhead Telegraphos removes.
type MsgSystem = msg.System

// NewMsgSystem installs OS-mediated messaging on the cluster.
func (c *Cluster) NewMsgSystem() *MsgSystem { return msg.NewSystem(c.Cluster) }

// Paging re-exports (the remote-memory paging substrate of §2.2.6/[21]).
type (
	// PagingConfig parameterizes a paging run.
	PagingConfig = paging.Config
	// PagingBackend selects disk or remote-memory paging.
	PagingBackend = paging.Backend
	// PagingResult summarizes a paging run.
	PagingResult = paging.Result
	// PageRef is one page reference of a paging workload.
	PageRef = paging.Ref
)

// Paging backends.
const (
	// PageToDisk pages to the local disk.
	PageToDisk = paging.Disk
	// PageToRemoteMemory pages to a memory-server node over Telegraphos.
	PageToRemoteMemory = paging.RemoteMemory
)

// GenPageRefs generates a page-reference string with temporal locality.
func GenPageRefs(seed int64, n, pages int, locality, writeFrac float64) []PageRef {
	return paging.GenRefs(seed, n, pages, locality, writeFrac)
}

// RunPaging replays refs on node `node` under cfg. The cluster is
// consumed by the run (it drives the simulation to completion).
func (c *Cluster) RunPaging(node int, cfg PagingConfig, refs []PageRef) (PagingResult, error) {
	return paging.Run(c.Cluster, node, cfg, refs)
}

// Profiler monitors remote-page access patterns through the HIB's page
// access counters (§2.2.6) — the hot-spot/statistics use of the
// hardware.
type Profiler = profile.Profiler

// GPage is a cluster-wide page identity.
type GPage = addrspace.GPage

// NewProfiler arms the page access counters for the pages containing
// each va (as accessed from node) and samples them every period for
// duration. Call Stop on the result to end monitoring early.
func (c *Cluster) NewProfiler(node int, period, duration sim.Time, vas ...VAddr) *Profiler {
	return profile.New(c.Cluster, node, period, duration, vas...)
}
