package telegraphos_test

import (
	"testing"

	tg "telegraphos"
)

// TestSixteenNodeChainMixedTraffic is the repository's scale test: a
// 16-workstation chain (4 switches) running four traffic patterns
// simultaneously — a replicated page under update coherence, remote
// atomics on a global counter, user-level channels, and background
// remote-write streams — checking global invariants at the end.
func TestSixteenNodeChainMixedTraffic(t *testing.T) {
	const n = 16
	c := tg.NewCluster(
		tg.WithNodes(n),
		tg.WithTopology("chain"),
		tg.WithChainPerSwitch(4),
		tg.WithSeed(3),
	)
	u := c.AttachUpdateCoherence(tg.CountersCached)

	// A page replicated on the four "corner" nodes.
	page := c.AllocShared(0, 4096)
	copies := []int{0, 5, 10, 15}
	u.SharePage(page, 0, copies)

	// A global counter on node 8.
	ctr := c.AllocShared(8, 8)

	// Channels from each odd node to its even neighbour.
	chans := make(map[int]*tg.Channel)
	for i := 1; i < n; i += 2 {
		chans[i] = c.NewChannel(tg.NodeID(i-1), 32)
	}

	bar := c.NewBarrier(0, n)
	incsPerNode := 8
	for i := 0; i < n; i++ {
		i := i
		w := bar.Participant()
		c.Spawn(i, "mixed", func(ctx *tg.Ctx) {
			// Everyone bumps the global counter.
			for k := 0; k < incsPerNode; k++ {
				ctx.FetchAndInc(ctr)
			}
			// Replica holders write the shared page.
			for _, cp := range copies {
				if cp == i {
					for k := 0; k < 10; k++ {
						ctx.Store(page+tg.VAddr(8*((i+k)%64)), uint64(i*100+k))
						ctx.Compute(2 * tg.Microsecond)
					}
				}
			}
			// Odd nodes send a message to their even neighbour.
			if ch, ok := chans[i]; ok {
				ch.Send(ctx, []uint64{uint64(i), uint64(i * 2)})
			}
			if i%2 == 0 && i+1 < n {
				got := chans[i+1].Recv(ctx, 2)
				if got[0] != uint64(i+1) || got[1] != uint64(2*(i+1)) {
					t.Errorf("node %d: bad message %v", i, got)
				}
			}
			ctx.Fence()
			w.Wait(ctx)
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	// Invariant: the counter counted every increment exactly once.
	var final uint64
	c.Spawn(8, "check", func(ctx *tg.Ctx) { final = ctx.Load(ctr) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if final != uint64(n*incsPerNode) {
		t.Fatalf("global counter = %d, want %d", final, n*incsPerNode)
	}

	// Invariant: all four replicas of the shared page are identical.
	off := c.SharedOffset(page)
	for w := 0; w < 64; w++ {
		ref := c.Nodes[copies[0]].Mem.ReadWord(off + uint64(8*w))
		for _, cp := range copies[1:] {
			if got := c.Nodes[cp].Mem.ReadWord(off + uint64(8*w)); got != ref {
				t.Fatalf("replica divergence at word %d: node %d has %d, node %d has %d",
					w, copies[0], ref, cp, got)
			}
		}
	}

	// Invariant: the fabric never misrouted and no counters leaked.
	rep := c.Snapshot()
	if rep.SwitchMisroutes != 0 {
		t.Fatalf("misroutes: %d", rep.SwitchMisroutes)
	}
	for _, cp := range copies {
		if live := u.Mgr(cp).Cache().Live(); live != 0 {
			t.Fatalf("node %d leaked %d pending-write counters", cp, live)
		}
	}
}

// TestScaleDeterminism re-runs a smaller mixed workload and requires
// bit-identical final simulated time across runs.
func TestScaleDeterminism(t *testing.T) {
	run := func() tg.Time {
		c := tg.NewCluster(tg.WithNodes(8), tg.WithTopology("chain"), tg.WithChainPerSwitch(2), tg.WithSeed(99))
		ctr := c.AllocShared(0, 8)
		bar := c.NewBarrier(0, 8)
		for i := 0; i < 8; i++ {
			w := bar.Participant()
			c.Spawn(i, "p", func(ctx *tg.Ctx) {
				for k := 0; k < 5; k++ {
					ctx.FetchAndInc(ctr)
				}
				w.Wait(ctx)
			})
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Eng.Now()
	}
	first := run()
	if second := run(); second != first {
		t.Fatalf("nondeterministic at scale: %v vs %v", first, second)
	}
}
