#!/bin/sh
# Tier-1 verification: build, vet, test, and race-test everything.
# CI and pre-commit both run this script; keep it fast and exhaustive.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== go test ./...'
go test ./...

echo '== go test -race ./...'
go test -race ./...

# Sharded-engine determinism: the same workloads must produce
# bit-identical traces and experiment results on 1 and N shards, with
# the shard workers packed onto one OS thread and spread across four.
echo '== shard determinism (-cpu 1,4)'
go test ./internal/simtest -run TestShardInvariantTraceHash -cpu 1,4 -count 1
go test ./internal/experiments -run TestExperimentsShardInvariant -cpu 1,4 -count 1

echo '== tgchaos 2-shard smoke'
go run ./cmd/tgchaos -seeds 10 -shards 2

echo 'tier-1: all checks passed'
