#!/bin/sh
# Tier-1 verification: build, vet, test, and race-test everything.
# CI and pre-commit both run this script; keep it fast and exhaustive.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

# Determinism & shard-safety lints: no wall clock or global math/rand in
# sim-facing code, no effectful map-range iteration, no blocking calls in
# event callbacks, no dropped event handles, no HIB recorders that bypass
# the trace pipeline, no filesystem access outside the spill writer — and
# the interprocedural suite: taint (no call chain reaching wall-clock,
# rand, env, or host identity), noalloc (//tgvet:noalloc hot paths proven
# allocation-free, transitively), and handle (pooled event-handle
# lifetime). Must exit clean before the test phases run; `make
# lint-fix-audit` lists every //tgvet:allow escape hatch with its reason.
echo '== tgvet ./...'
go run ./cmd/tgvet ./...

echo '== go test ./...'
go test ./...

echo '== go test -race ./...'
go test -race ./...

# Sharded-engine determinism: the same workloads must produce
# bit-identical traces and experiment results on 1, 2, 4, and 8 shards
# (batched and per-message barrier delivery), with the shard workers
# packed onto one OS thread and spread across four.
echo '== shard determinism (-cpu 1,4)'
go test ./internal/simtest -run TestShardInvariantTraceHash -cpu 1,4 -count 1
go test ./internal/experiments -run TestExperimentsShardInvariant -cpu 1,4 -count 1

# Hot-path allocation budgets: schedule/fire/recycle and Chan.Send must
# stay at zero allocations per event in steady state, and so must the
# streaming trace pipeline's ring append + k-way drain + incremental hash.
echo '== allocation budgets (-cpu 1,4)'
go test ./internal/sim -run 'Allocs$' -cpu 1,4 -count 1
go test ./internal/trace -run 'Allocs$' -cpu 1,4 -count 1

# Bounded-memory gate: a long chaos run must keep peak trace residency
# and the online checker's undecided windows O(window), not O(events),
# and a mid-run checkpoint/restore must reproduce the uninterrupted
# run's final trace hash.
echo '== bounded memory + checkpoint/restore'
go test ./internal/simtest -run 'TestBoundedResidency|TestCheckpointRestore' -count 1
go run ./cmd/tgchaos -seeds 5 -checkpoint -window 512

# Throughput floor: a short single-shard PDES smoke must stay above the
# floor recorded by `make bench` (BENCH_pdes.floor). The floor is scaled
# down on hosts that run the calibration spin slower than the recording
# host, so this catches engine regressions, not slow CI hardware.
echo '== PDES throughput floor'
go test ./internal/experiments -run '^$' -bench BenchmarkPDESThroughputFloor -benchtime 3x -count 1

echo '== tgchaos 2-shard smoke'
go run ./cmd/tgchaos -seeds 10 -shards 2

# In-network collective smoke (DESIGN.md §16): E15 runs the 64-node
# in-fabric vs host-side barrier comparison and checks that a 64-node
# hot-counter fetch&add stream reaches the same final count with
# switch-level combining as without it.
echo '== collectives smoke (E15)'
go run ./cmd/tgbench -exp E15 >/dev/null

# Memory-model conformance: the trimmed litmus matrix must be free of
# linearizability/fence violations and must still reproduce the
# Galactica baseline's §2.4 anomaly. The quick sweep includes the
# combining-enabled arms of every fetch&inc test.
echo '== tglitmus quick sweep'
go run ./cmd/tglitmus -quick

# Topology-zoo gates (DESIGN.md §17): the deadlock-freedom proof over
# every generated fabric (CDG acyclicity, all-pairs reachability,
# minimality, adversarial completion), then a litmus smoke on the
# 16-node torus — the memory-model verdicts must not depend on the
# wires the protocol runs over.
echo '== topology deadlock-freedom harness'
go test ./internal/topology -count 1
echo '== tglitmus torus smoke'
go run ./cmd/tglitmus -topo -quick -tests SB,MP+fence >/dev/null

echo '== linearizability smoke (fuzz corpora replay)'
go test ./internal/linearize ./internal/consistency -count 1

# Coverage ratchet for the checker packages: raise the minimum when you
# raise the coverage, never lower it.
echo '== checker coverage ratchet'
check_cover() {
	pkg="$1"; min="$2"
	profile=$(mktemp); trap 'rm -f "$profile"' EXIT
	pct=$(go test -coverprofile="$profile" "./$pkg" \
		| sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	rm -f "$profile"
	if [ -z "$pct" ]; then
		echo "coverage ratchet: no coverage figure for $pkg" >&2; exit 1
	fi
	if [ "$(awk -v p="$pct" -v m="$min" 'BEGIN{print (p>=m)?1:0}')" != 1 ]; then
		echo "coverage ratchet: $pkg at ${pct}%, minimum is ${min}%" >&2; exit 1
	fi
	echo "   $pkg ${pct}% (minimum ${min}%)"
}
check_cover internal/linearize 85
check_cover internal/litmus 75
check_cover internal/consistency 90
check_cover internal/analysis 85
check_cover internal/collective 80
check_cover internal/topology 90

echo 'tier-1: all checks passed'
