#!/bin/sh
# Tier-1 verification: build, vet, test, and race-test everything.
# CI and pre-commit both run this script; keep it fast and exhaustive.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== go test ./...'
go test ./...

echo '== go test -race ./...'
go test -race ./...

echo 'tier-1: all checks passed'
