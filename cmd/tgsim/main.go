// Command tgsim runs an interactive-scale Telegraphos cluster simulation
// and prints per-node telemetry: a quick way to poke at the machine
// model without writing a program.
//
// Workloads:
//
//	pingpong   two nodes bounce a word via remote writes (default)
//	stream     node 0 streams writes to every other node
//	allatomic  every node hammers one fetch&inc counter
//	sharing    all nodes write a replicated page under update coherence
//
// Usage:
//
//	tgsim -nodes 4 -topology star -workload stream -ops 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/coherence"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/params"
	"telegraphos/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 2, "number of workstations")
	topo := flag.String("topology", "star", "fabric: pair, star, chain")
	perSwitch := flag.Int("per-switch", 4, "nodes per switch (chain)")
	placement := flag.String("placement", "hib", "shared-data placement: hib (Telegraphos I) or main (Telegraphos II)")
	work := flag.String("workload", "pingpong", "pingpong, stream, allatomic, sharing")
	ops := flag.Int("ops", 1000, "operations per node")
	seed := flag.Int64("seed", 1, "deterministic seed")
	configPath := flag.String("config", "", "JSON machine description (overrides other machine flags)")
	flag.Parse()

	var cfg params.Config
	if *configPath != "" {
		var err error
		cfg, err = params.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		cfg = params.Default(*nodes)
		cfg.Topology = *topo
		cfg.ChainPerSwitch = *perSwitch
		cfg.Seed = *seed
		cfg.Sizing.MemBytes = 1 << 22
		if *placement == "main" {
			cfg.Placement = params.SharedInMain
		}
	}
	c := core.New(cfg)

	switch *work {
	case "pingpong":
		pingpong(c, *ops)
	case "stream":
		stream(c, *ops)
	case "allatomic":
		allatomic(c, *ops)
	case "sharing":
		sharing(c, *ops)
	default:
		fmt.Fprintf(os.Stderr, "tgsim: unknown workload %q\n", *work)
		os.Exit(2)
	}

	if err := c.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "tgsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Print(c.Snapshot().Format())
}

func pingpong(c *core.Cluster, ops int) {
	if c.N() < 2 {
		fmt.Fprintln(os.Stderr, "tgsim: pingpong needs 2 nodes")
		os.Exit(2)
	}
	a := c.AllocShared(0, 8)
	b := c.AllocShared(1, 8)
	c.Spawn(0, "ping", func(ctx *cpu.Ctx) {
		for i := 1; i <= ops; i++ {
			ctx.Store(b, uint64(i)) // write into node 1's memory
			for ctx.Load(a) < uint64(i) {
				ctx.Compute(sim.Microsecond)
			}
		}
	})
	c.Spawn(1, "pong", func(ctx *cpu.Ctx) {
		for i := 1; i <= ops; i++ {
			for ctx.Load(b) < uint64(i) {
				ctx.Compute(sim.Microsecond)
			}
			ctx.Store(a, uint64(i))
		}
	})
}

func stream(c *core.Cluster, ops int) {
	targets := make([]addrspace.VAddr, c.N())
	for i := 1; i < c.N(); i++ {
		targets[i] = c.AllocShared(addrspace.NodeID(i), 4096)
	}
	c.Spawn(0, "streamer", func(ctx *cpu.Ctx) {
		for i := 0; i < ops; i++ {
			for t := 1; t < c.N(); t++ {
				ctx.Store(targets[t]+addrspace.VAddr(8*(i%512)), uint64(i))
			}
		}
		ctx.Fence()
	})
}

func allatomic(c *core.Cluster, ops int) {
	ctr := c.AllocShared(0, 8)
	for i := 0; i < c.N(); i++ {
		c.Spawn(i, "inc", func(ctx *cpu.Ctx) {
			for k := 0; k < ops; k++ {
				ctx.FetchAndInc(ctr)
			}
		})
	}
}

func sharing(c *core.Cluster, ops int) {
	u := coherence.NewUpdate(c, coherence.CountersCached)
	page := c.AllocShared(0, c.PageSize())
	all := make([]int, c.N())
	for i := range all {
		all[i] = i
	}
	u.SharePage(page, 0, all)
	for i := 0; i < c.N(); i++ {
		i := i
		c.Spawn(i, "writer", func(ctx *cpu.Ctx) {
			for k := 0; k < ops; k++ {
				w := (k*c.N() + i) % 256
				ctx.Store(page+addrspace.VAddr(8*w), uint64(k))
				ctx.Compute(2 * sim.Microsecond)
			}
			ctx.Fence()
		})
	}
}
