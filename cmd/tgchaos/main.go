// Command tgchaos is the deterministic chaos soak driver: it sweeps
// seeded simulation-test scenarios (random cluster shapes and workloads
// under link fault injection, see internal/simtest) and reports every
// invariant violation together with the one-line reproducer.
//
// Usage:
//
//	tgchaos                    # 100 seeds starting at 0, faults on
//	tgchaos -seeds 1000        # a longer soak
//	tgchaos -start 5000        # a different seed range
//	tgchaos -seed 17 -v        # replay one seed, verbose
//	tgchaos -clean             # fault-free control sweep
//	tgchaos -broken            # sanity: the broken protocol must be caught
//	tgchaos -shards 2          # sharded engine (hashes match -shards 1)
//	tgchaos -permsg            # legacy per-message barrier delivery
//
// Exit status 1 if any scenario violated an invariant.
package main

import (
	"flag"
	"fmt"
	"os"

	"telegraphos/internal/simtest"
)

func main() {
	seeds := flag.Int64("seeds", 100, "number of seeds to sweep")
	start := flag.Int64("start", 0, "first seed of the sweep")
	one := flag.Int64("seed", -1, "replay a single seed (overrides the sweep)")
	clean := flag.Bool("clean", false, "disable fault injection (control runs)")
	broken := flag.Bool("broken", false, "run the deliberately broken coherence variant (violations expected)")
	stop := flag.Bool("stop-on-fail", false, "stop at the first failing seed")
	verbose := flag.Bool("v", false, "print every scenario, not just failures")
	shards := flag.Int("shards", 1, "simulation shards (trace hashes are invariant to this)")
	perMsg := flag.Bool("permsg", false, "legacy per-message barrier delivery (trace hashes are invariant to this)")
	flag.Parse()

	lo, hi := *start, *start+*seeds
	if *one >= 0 {
		lo, hi = *one, *one+1
		*verbose = true
	}

	failures := 0
	for seed := lo; seed < hi; seed++ {
		res, err := simtest.Run(seed, simtest.Options{NoFaults: *clean, BreakCoherence: *broken, Shards: *shards, PerMessageDelivery: *perMsg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgchaos: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		if *verbose || res.Failed() {
			fmt.Printf("%s  events=%d hash=%#016x time=%v\n",
				res.Scenario.String(), res.Events, res.TraceHash, res.SimTime)
			if res.Scenario.Faults != nil {
				fs := res.FaultStats
				fmt.Printf("  faults: dropped=%d duplicated=%d reordered=%d retransmits=%d deduped=%d\n",
					fs.Dropped, fs.Duplicated, fs.Reordered, fs.Retransmits, fs.Deduped)
			}
		}
		if res.Failed() {
			failures++
			for _, v := range res.Violations {
				fmt.Printf("  VIOLATION %s\n", v.String())
			}
			fmt.Printf("  reproduce: %s\n", simtest.Reproducer(seed))
			if *stop {
				break
			}
		}
	}

	if failures > 0 {
		fmt.Printf("tgchaos: %d of %d scenarios violated invariants\n", failures, hi-lo)
		os.Exit(1)
	}
	fmt.Printf("tgchaos: %d scenarios clean\n", hi-lo)
}
