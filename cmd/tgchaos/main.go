// Command tgchaos is the deterministic chaos soak driver: it sweeps
// seeded simulation-test scenarios (random cluster shapes and workloads
// under link fault injection, see internal/simtest) and reports every
// invariant violation together with the one-line reproducer.
//
// Usage:
//
//	tgchaos                    # 100 seeds starting at 0, faults on
//	tgchaos -seeds 1000        # a longer soak
//	tgchaos -start 5000        # a different seed range
//	tgchaos -seed 17 -v        # replay one seed, verbose
//	tgchaos -clean             # fault-free control sweep
//	tgchaos -broken            # sanity: the broken protocol must be caught
//	tgchaos -shards 2          # sharded engine (hashes match -shards 1)
//	tgchaos -permsg            # legacy per-message barrier delivery
//	tgchaos -window 512        # trace ring capacity per node (bounded memory)
//	tgchaos -checkpoint        # checkpoint/restore the trace state mid-run
//	                           # and require the same final hash as an
//	                           # uninterrupted run of the same seed
//
// Exit status 1 if any scenario violated an invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"telegraphos/internal/simtest"
	"telegraphos/internal/stats"
)

func main() {
	seeds := flag.Int64("seeds", 100, "number of seeds to sweep")
	start := flag.Int64("start", 0, "first seed of the sweep")
	one := flag.Int64("seed", -1, "replay a single seed (overrides the sweep)")
	clean := flag.Bool("clean", false, "disable fault injection (control runs)")
	broken := flag.Bool("broken", false, "run the deliberately broken coherence variant (violations expected)")
	stop := flag.Bool("stop-on-fail", false, "stop at the first failing seed")
	verbose := flag.Bool("v", false, "print every scenario, not just failures")
	shards := flag.Int("shards", 1, "simulation shards (trace hashes are invariant to this)")
	perMsg := flag.Bool("permsg", false, "legacy per-message barrier delivery (trace hashes are invariant to this)")
	window := flag.Int("window", 0, "per-node trace ring capacity (0 = trace.DefaultWindow); memory stays O(window), not O(events)")
	checkpoint := flag.Bool("checkpoint", false, "encode/decode/swap the trace state at a barrier mid-run and require the final hash to match an uninterrupted run")
	opsPerNode := flag.Int("ops", 0, "override the per-node op count of every scenario (0 = scenario default)")
	spill := flag.String("spill", "", "page the canonical merged stream to this TGE1 file (sweeps write <path>.<seed>); inspect with `tgtrace events`")
	flag.Parse()

	lo, hi := *start, *start+*seeds
	if *one >= 0 {
		lo, hi = *one, *one+1
		*verbose = true
	}
	if *checkpoint && *opsPerNode == 0 {
		// Scenarios must run long enough to cross a drain boundary with
		// merged output, or there is no barrier to checkpoint at.
		*opsPerNode = 150
	}

	failures := 0
	for seed := lo; seed < hi; seed++ {
		opts := simtest.Options{
			NoFaults: *clean, BreakCoherence: *broken,
			Shards: *shards, PerMessageDelivery: *perMsg,
			TraceWindow: *window, OpsPerNode: *opsPerNode,
		}
		if *spill != "" {
			opts.SpillPath = *spill
			if hi-lo > 1 {
				opts.SpillPath = fmt.Sprintf("%s.%d", *spill, seed)
			}
		}
		res, err := simtest.Run(seed, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgchaos: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		bad := res.Failed()
		if *checkpoint {
			// The checkpointed rerun must land on the identical trace.
			copts := opts
			copts.Checkpoint = true
			copts.SpillPath = "" // don't clobber the base run's spill file
			cp, err := simtest.Run(seed, copts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tgchaos: seed %d (checkpoint): %v\n", seed, err)
				os.Exit(1)
			}
			switch {
			case !cp.Checkpointed:
				fmt.Printf("seed %d: checkpoint never triggered (run too short for a drain boundary?)\n", seed)
				bad = true
			case cp.TraceHash != res.TraceHash || cp.Events != res.Events || cp.SimTime != res.SimTime:
				fmt.Printf("seed %d: CHECKPOINT DIVERGENCE restored run (hash %#016x, %d events, %v) != uninterrupted (hash %#016x, %d events, %v)\n",
					seed, cp.TraceHash, cp.Events, cp.SimTime, res.TraceHash, res.Events, res.SimTime)
				bad = true
			case *verbose:
				fmt.Printf("seed %d: checkpoint/restore reproduced hash %#016x\n", seed, cp.TraceHash)
			}
		}
		if *verbose || bad {
			fmt.Printf("%s  events=%d hash=%#016x time=%v peak-resident=%d\n",
				res.Scenario.String(), res.Events, res.TraceHash, res.SimTime, res.PeakResident)
			if res.Scenario.Faults != nil {
				fs := res.FaultStats
				fmt.Printf("  faults: dropped=%d duplicated=%d reordered=%d retransmits=%d deduped=%d\n",
					fs.Dropped, fs.Duplicated, fs.Reordered, fs.Retransmits, fs.Deduped)
			}
			if res.Scenario.FabricSync || res.Scenario.Combining {
				cs := stats.NewCounterSet()
				res.Collective.AddTo(cs)
				// Switchless topologies (pair) have no fabric counters.
				if names := cs.Names(); len(names) > 0 {
					fmt.Printf("  collectives:")
					for _, n := range names {
						fmt.Printf(" %s=%d", strings.TrimPrefix(n, "collective."), cs.Get(n))
					}
					fmt.Println()
				}
			}
		}
		if bad {
			failures++
			for _, v := range res.Violations {
				fmt.Printf("  VIOLATION %s\n", v.String())
			}
			fmt.Printf("  reproduce: %s\n", simtest.Reproducer(seed))
			if *stop {
				break
			}
		}
	}

	if failures > 0 {
		fmt.Printf("tgchaos: %d of %d scenarios violated invariants\n", failures, hi-lo)
		os.Exit(1)
	}
	fmt.Printf("tgchaos: %d scenarios clean\n", hi-lo)
}
