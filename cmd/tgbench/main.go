// Command tgbench regenerates every table and figure of the paper's
// evaluation (plus the protocol-claim experiments E4–E15) and prints a
// paper-vs-measured comparison for each. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	tgbench                          # run everything
//	tgbench -exp E1                  # run one experiment
//	tgbench -json                    # machine-readable results
//	tgbench -list                    # list experiment ids and titles
//	tgbench -shards 4                # run the suite on 4 simulation shards
//	tgbench -permsg                  # legacy per-message barrier delivery
//	tgbench -pdes -out BENCH.json    # PDES node×shard scaling sweep
//	                                 # (also records BENCH.floor, the CI
//	                                 # throughput gate scripts/check.sh uses)
//	tgbench -pdes -trace-window 4096 # sweep with the streaming trace
//	                                 # pipeline attached: reports the
//	                                 # shard-invariant fingerprint and
//	                                 # peak (window-bounded) residency
//	tgbench -collscale               # paper-scale E15 barrier sweep:
//	                                 # host-side vs in-fabric, 64-1024
//	                                 # nodes (EXPERIMENTS.md table)
//	tgbench -topo -out BENCH_topo.json
//	                                 # E16 topology-zoo sweep: every
//	                                 # generated fabric × 16/64/256 nodes
//	                                 # × 1/4 cores per node, read RTT and
//	                                 # adversarial-permutation completion
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"telegraphos/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment (E1..E15)")
	list := flag.Bool("list", false, "list experiments and exit")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	seed := flag.Int64("seed", 1, "deterministic base seed (same seed → bit-identical output)")
	shards := flag.Int("shards", 1, "simulation shards (results are invariant to this; only wall time changes)")
	perMsg := flag.Bool("permsg", false, "legacy per-message barrier delivery instead of batched hand-off (results are invariant; only wall time changes)")
	pdes := flag.Bool("pdes", false, "run the PDES node×shard scaling sweep instead of the experiments")
	collScale := flag.Bool("collscale", false, "run the paper-scale E15 barrier sweep (host-side vs in-fabric, 64-1024 nodes) instead of the experiments")
	topo := flag.Bool("topo", false, "run the E16 topology-zoo sweep (fabrics × 16/64/256 nodes × 1/4 cores) instead of the experiments")
	out := flag.String("out", "", "with -pdes or -topo: also write the sweep report as JSON to this file (-pdes adds the throughput floor as <file>.floor)")
	traceWindow := flag.Int("trace-window", 0, "with -pdes: attach the streaming trace pipeline with this per-node ring capacity (0 = untraced); the report then includes the shard-invariant fingerprint and peak trace residency")
	flag.Parse()

	experiments.SetSeed(*seed)
	experiments.SetShards(*shards)
	experiments.SetPerMessageDelivery(*perMsg)
	experiments.SetTraceWindow(*traceWindow)

	if *collScale {
		host, fabric := experiments.E15Scale([]int{64, 128, 256, 512, 1024}, 1)
		fmt.Print(host.Format())
		fmt.Print(fabric.Format())
		return
	}

	if *topo {
		points := experiments.E16Sweep(
			experiments.E16Topos,
			[]int{16, 64, 256},
			[]int{1, 4},
			4,
		)
		fmt.Print(experiments.FormatTopo(points))
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
				os.Exit(1)
			}
			if err := experiments.WriteTopoJSON(f, points); err != nil {
				fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return
	}

	if *pdes {
		rep := experiments.PDESSweep(
			[]int{8, 16, 32, 64},
			[]int{1, 2, 4, 8},
			experiments.PDESOps,
		)
		fmt.Print(experiments.FormatPDES(rep))
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
				os.Exit(1)
			}
			if err := experiments.WritePDESJSON(f, rep); err != nil {
				fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
			floorPath := strings.TrimSuffix(*out, ".json") + ".floor"
			if err := experiments.WriteFloor(floorPath, experiments.FloorFor(rep)); err != nil {
				fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", floorPath)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			r := experiments.Get(id)()
			fmt.Printf("%-4s %s [%s]\n", r.ID, r.Title, r.Artifact)
		}
		return
	}

	var results []*experiments.Result
	if *exp != "" {
		run := experiments.Get(*exp)
		if run == nil {
			fmt.Fprintf(os.Stderr, "tgbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		results = append(results, run())
	} else {
		results = experiments.RunAll()
	}

	if *asJSON {
		if err := experiments.WriteJSON(os.Stdout, results); err != nil {
			fmt.Fprintf(os.Stderr, "tgbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	allOK := true
	for _, r := range results {
		fmt.Print(r.Format())
		fmt.Println()
		if !r.Ok() {
			allOK = false
		}
	}
	if !allOK {
		fmt.Println("RESULT: some experiments did not match the paper's shape")
		os.Exit(1)
	}
	fmt.Printf("RESULT: all %d experiments match the paper's shape\n", len(results))
}
