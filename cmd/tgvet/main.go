// Command tgvet runs the simulator's static determinism and
// shard-safety lint suite (see internal/analysis). `tgvet ./...` must
// exit clean on this repository; scripts/check.sh runs it before the
// test phases.
package main

import (
	"os"

	"telegraphos/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
