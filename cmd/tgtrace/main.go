// Command tgtrace generates, inspects, and replays shared-memory access
// traces (the [22]-style trace-driven methodology).
//
// Subcommands:
//
//	tgtrace gen -kind hotpage -n 10000 -out t.tgt   # generate a trace
//	tgtrace stat t.tgt                              # summarize a trace
//	tgtrace replay -nodes 4 t.tgt                   # replay over the update protocol
//	tgtrace events -n 20 run.tge                    # inspect a TGE1 event spill
//	                                                # (written by tgchaos -spill)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"telegraphos/internal/addrspace"
	"telegraphos/internal/coherence"
	"telegraphos/internal/core"
	"telegraphos/internal/cpu"
	"telegraphos/internal/params"
	"telegraphos/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "events":
		events(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tgtrace gen|stat|replay|events [flags]")
	os.Exit(2)
}

// events dumps a TGE1 event spill (the canonical merged stream a
// windowed log paged to disk): per-kind and per-node totals, the
// recomputed incremental fingerprint, and optionally the records
// themselves.
func events(args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	n := fs.Int("n", 0, "print the first n records (0 = summary only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sr, err := trace.NewSpillReader(f)
	if err != nil {
		fatal(err)
	}
	var (
		total   int
		hash    = trace.HashInit
		byKind  = make(map[trace.EventKind]int)
		byNode  = make(map[int]int)
		lastAt  int64
		firstAt int64
	)
	for {
		e, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(fmt.Errorf("%s: record %d: %w", fs.Arg(0), total, err))
		}
		if total == 0 {
			firstAt = e.At
		}
		if *n > 0 && total < *n {
			fmt.Println(e.String())
		}
		hash = trace.FoldHash(hash, e)
		byKind[e.Kind]++
		byNode[e.Node]++
		lastAt = e.At
		total++
	}
	fmt.Printf("events:  %d (t=%d..%d)\nhash:    %#016x\n", total, firstAt, lastAt, hash)
	for k := trace.EventKind(0); k < 64; k++ {
		if byKind[k] > 0 {
			fmt.Printf("  %-18s %d\n", k.String(), byKind[k])
		}
	}
	printed := 0
	for node := 0; printed < len(byNode) && node < 1<<20; node++ {
		if c, ok := byNode[node]; ok {
			fmt.Printf("  node%-14d %d\n", node, c)
			printed++
		}
	}
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "hotpage", "hotpage, uniform, producer-consumer")
	n := fs.Int("n", 10000, "number of accesses")
	nodes := fs.Int("nodes", 4, "number of nodes")
	words := fs.Int("words", 1024, "shared words")
	seed := fs.Int64("seed", 1, "seed")
	out := fs.String("out", "trace.tgt", "output file")
	fs.Parse(args)

	var t []trace.Access
	switch *kind {
	case "hotpage":
		t = trace.HotPage(*seed, *n, *nodes, *words, 16, 0.9, 0.3)
	case "uniform":
		t = trace.Uniform(*seed, *n, *nodes, *words, 0.3)
	case "producer-consumer":
		t = trace.ProducerConsumer(*n/(*nodes**words), *nodes, *words)
	default:
		fmt.Fprintf(os.Stderr, "tgtrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, t); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d accesses to %s\n", len(t), *out)
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := load(fs.Arg(0))
	s := trace.Summarize(t)
	fmt.Printf("accesses: %d\nwrites:   %d (%.1f%%)\nwords:    %d distinct\n",
		s.Accesses, s.Writes, 100*float64(s.Writes)/float64(max(s.Accesses, 1)), len(s.Words))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "number of nodes")
	mode := fs.String("counters", "cached", "counter mode: off, cached, infinite")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := load(fs.Arg(0))

	var cm coherence.CounterMode
	switch *mode {
	case "off":
		cm = coherence.CountersOff
	case "cached":
		cm = coherence.CountersCached
	case "infinite":
		cm = coherence.CountersInfinite
	default:
		fmt.Fprintf(os.Stderr, "tgtrace: unknown counter mode %q\n", *mode)
		os.Exit(2)
	}

	maxWord := 0
	for _, a := range t {
		maxWord = max(maxWord, a.Word)
	}
	cfg := params.Default(*nodes)
	cfg.Sizing.MemBytes = 1 << 23
	c := core.New(cfg)
	u := coherence.NewUpdate(c, cm)
	base := c.AllocShared(0, 8*(maxWord+1))
	all := make([]int, *nodes)
	for i := range all {
		all[i] = i
	}
	pages := (8*(maxWord+1) + c.PageSize() - 1) / c.PageSize()
	for pg := 0; pg < pages; pg++ {
		u.SharePage(base+addrspace.VAddr(pg*c.PageSize()), 0, all)
	}

	parts := trace.Split(t, *nodes)
	for i := 0; i < *nodes; i++ {
		i := i
		c.Spawn(i, "replay", func(ctx *cpu.Ctx) {
			for _, a := range parts[i] {
				va := base + addrspace.VAddr(8*a.Word)
				if a.Write {
					ctx.Store(va, uint64(a.Word))
				} else {
					ctx.Load(va)
				}
			}
			ctx.Fence()
		})
	}
	if err := c.Run(); err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d accesses on %d nodes in %v simulated\n", len(t), *nodes, c.Eng.Now())
	for i := 0; i < *nodes; i++ {
		m := u.Mgr(i)
		fmt.Printf("node %d: %s", i, m.Counters)
		if cm == coherence.CountersCached {
			cc := m.Cache()
			fmt.Printf(" | CAM: max-occupancy=%d stalls=%d stall-time=%v",
				cc.MaxOccupancy(), cc.Stalls(), cc.StallTime())
		}
		fmt.Println()
	}
}

func load(path string) []trace.Access {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return t
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tgtrace: %v\n", err)
	os.Exit(1)
}
