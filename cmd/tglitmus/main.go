// Command tglitmus sweeps the litmus-test catalog (internal/litmus)
// across coherence protocols, shard counts, link-fault schedules, and
// timing variants, printing per-configuration outcome histograms. Every
// run's trace is checked for linearizability of the plain-region words
// and for the §2.3.5 fence contract; forbidden outcomes under the
// Telegraphos protocols are violations, while the Galactica ring
// baseline must reproduce its §2.4 "1, 2, 1" anomaly at least once.
//
// Usage:
//
//	tglitmus                   # full matrix
//	tglitmus -quick            # trimmed matrix (the tier-1 gate)
//	tglitmus -tests SB,MP      # only the named tests
//	tglitmus -seed 7 -v        # different seeds, per-run verdict lines
//	tglitmus -topo             # topology axis: every test × generated
//	                           # fabric (torus/fat-tree/dragonfly) at
//	                           # 16–64 nodes × protocol × shard count
//
// Exit status 1 on any conformance violation or if a required anomaly
// witness never appeared.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"telegraphos/internal/litmus"
)

func main() {
	quick := flag.Bool("quick", false, "trimmed matrix: shards {1,2}, 3 variants, no heavy faults")
	tests := flag.String("tests", "", "comma-separated test names (default all)")
	seed := flag.Int64("seed", 1, "base simulation seed")
	verbose := flag.Bool("v", false, "print one line per run")
	topo := flag.Bool("topo", false, "sweep the topology axis: generated fabrics at 16–64 nodes")
	flag.Parse()

	opts := litmus.SweepOptions{Quick: *quick, Seed: *seed, Verbose: *verbose, Out: os.Stdout}
	if *tests != "" {
		opts.Tests = make(map[string]bool)
		for _, name := range strings.Split(*tests, ",") {
			opts.Tests[strings.TrimSpace(name)] = true
		}
	}

	var res *litmus.SweepResult
	if *topo {
		res = litmus.SweepTopo(opts)
	} else {
		res = litmus.Sweep(opts)
	}
	res.Report(os.Stdout)
	if res.Failed() {
		fmt.Println("FAIL")
		os.Exit(1)
	}
	fmt.Println("PASS")
}
