// Command tggates prints the Telegraphos I HIB hardware inventory —
// the reproduction of the paper's Table 1. Logic gate counts are the
// published design constants; SRAM sizes are computed from the
// configured capacities, so resizing the machine updates the table.
//
// Usage:
//
//	tggates
//	tggates -multicast 32768 -pages 131072 -mem 33554432
package main

import (
	"flag"
	"fmt"

	"telegraphos/internal/gates"
	"telegraphos/internal/params"
)

func main() {
	mcast := flag.Int("multicast", 0, "multicast list entries (default: Table 1's 16K)")
	pages := flag.Int("pages", 0, "page-access-counter pages (default: Table 1's 64K)")
	mem := flag.Int("mem", 0, "MPM bytes (default: Table 1's 16MB)")
	flag.Parse()

	s := params.DefaultSizing()
	if *mcast > 0 {
		s.MulticastEntries = *mcast
	}
	if *pages > 0 {
		s.PageCounterPages = *pages
	}
	if *mem > 0 {
		s.MemBytes = *mem
	}

	fmt.Println("Table 1: Gate Count for Telegraphos I HIB")
	fmt.Println()
	fmt.Print(gates.Format(gates.Inventory(s)))
	fmt.Println()
	fmt.Printf("Shared-memory support: %d gates (paper: \"very small: 2700 gates and a few kilobits of memory\")\n",
		gates.SharedMemoryLogic(s))
}
