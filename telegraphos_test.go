package telegraphos_test

import (
	"testing"

	tg "telegraphos"
)

func TestFacadeQuickstart(t *testing.T) {
	c := tg.NewCluster(tg.WithNodes(2), tg.WithSeed(7))
	x := c.AllocShared(1, 8)
	var v uint64
	c.Spawn(0, "p", func(ctx *tg.Ctx) {
		ctx.Store(x, 42)
		ctx.Fence()
		v = ctx.Load(x)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("round trip = %d", v)
	}
}

func TestFacadeOptions(t *testing.T) {
	c := tg.NewCluster(
		tg.WithNodes(6),
		tg.WithTopology("chain"),
		tg.WithChainPerSwitch(2),
		tg.WithPlacement(tg.PlacementMain),
	)
	if c.N() != 6 {
		t.Fatalf("nodes = %d", c.N())
	}
	if c.Net.Kind() != "chain" {
		t.Fatalf("topology = %s", c.Net.Kind())
	}
	x := c.AllocShared(5, 8)
	var ok bool
	c.Spawn(0, "p", func(ctx *tg.Ctx) {
		ctx.Store(x, 9)
		ctx.Fence()
		ok = ctx.Load(x) == 9
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("chain access failed")
	}
}

func TestFacadeWithConfig(t *testing.T) {
	cfg := tg.DefaultConfig(3)
	cfg.Sizing.HIBWriteQueue = 4
	c := tg.NewCluster(tg.WithConfig(cfg))
	if c.N() != 3 {
		t.Fatal("WithConfig ignored")
	}
}

func TestFacadeLockAndBarrier(t *testing.T) {
	c := tg.NewCluster(tg.WithNodes(2))
	l := c.NewLock(0)
	b := c.NewBarrier(0, 2)
	count := c.AllocShared(0, 8)
	for i := 0; i < 2; i++ {
		w := b.Participant()
		c.Spawn(i, "p", func(ctx *tg.Ctx) {
			for k := 0; k < 3; k++ {
				l.Acquire(ctx)
				ctx.Store(count, ctx.Load(count)+1)
				l.Release(ctx)
			}
			w.Wait(ctx)
			if got := ctx.Load(count); got != 6 {
				t.Errorf("after barrier count = %d, want 6", got)
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeChannel(t *testing.T) {
	c := tg.NewCluster(tg.WithNodes(2))
	ch := c.NewChannel(1, 16)
	var got []uint64
	c.Spawn(0, "p", func(ctx *tg.Ctx) { ch.Send(ctx, []uint64{1, 2, 3}) })
	c.Spawn(1, "q", func(ctx *tg.Ctx) { got = ch.Recv(ctx, 3) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("channel got %v", got)
	}
}

func TestFacadeUpdateCoherence(t *testing.T) {
	c := tg.NewCluster(tg.WithNodes(3))
	u := c.AttachUpdateCoherence(tg.CountersCached)
	x := c.AllocShared(0, 8)
	u.SharePage(x, 0, []int{0, 1, 2})
	c.Spawn(1, "w", func(ctx *tg.Ctx) {
		ctx.Store(x, 5)
		ctx.Fence()
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	off := c.SharedOffset(x)
	for n := 0; n < 3; n++ {
		if got := c.Nodes[n].Mem.ReadWord(off); got != 5 {
			t.Fatalf("node %d copy = %d", n, got)
		}
	}
}

func TestFacadePaging(t *testing.T) {
	c := tg.NewCluster(tg.WithNodes(2))
	refs := tg.GenPageRefs(3, 50, 8, 0.8, 0.2)
	res, err := c.RunPaging(0, tg.PagingConfig{LocalFrames: 4, Backend: tg.PageToRemoteMemory, Server: 1}, refs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 || res.Elapsed == 0 {
		t.Fatalf("paging did nothing: %+v", res)
	}
}

func TestFacadeMsgSystem(t *testing.T) {
	c := tg.NewCluster(tg.WithNodes(2))
	sys := c.NewMsgSystem()
	var got []uint64
	c.Spawn(0, "s", func(ctx *tg.Ctx) { sys.Send(ctx, 1, 4, []uint64{8}) })
	c.Spawn(1, "r", func(ctx *tg.Ctx) { got = sys.Recv(ctx, 4) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("msg got %v", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() tg.Time {
		c := tg.NewCluster(tg.WithNodes(3), tg.WithSeed(11))
		u := c.AttachUpdateCoherence(tg.CountersCached)
		x := c.AllocShared(0, 4096)
		u.SharePage(x, 0, []int{0, 1, 2})
		for i := 0; i < 3; i++ {
			i := i
			c.Spawn(i, "w", func(ctx *tg.Ctx) {
				for k := 0; k < 50; k++ {
					ctx.Store(x+tg.VAddr(8*((k*3+i)%64)), uint64(k))
					ctx.Compute(tg.Microsecond)
				}
				ctx.Fence()
			})
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Eng.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("nondeterministic: %v vs %v", first, again)
		}
	}
}
