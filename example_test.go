package telegraphos_test

import (
	"fmt"

	tg "telegraphos"
)

// The basic remote write / fence / remote read cycle on two
// workstations.
func Example() {
	c := tg.NewCluster(tg.WithNodes(2))
	x := c.AllocShared(1, 8) // one shared word homed on node 1

	c.Spawn(0, "hello", func(ctx *tg.Ctx) {
		ctx.Store(x, 42) // remote write: returns once the HIB latches it
		ctx.Fence()      // wait until the write completed remotely
		fmt.Println("read back:", ctx.Load(x))
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	// Output: read back: 42
}

// Remote atomic operations are launched entirely from user level
// through a Telegraphos context, shadow addressing and a key (§2.2.4).
func Example_atomics() {
	c := tg.NewCluster(tg.WithNodes(2))
	ctr := c.AllocShared(1, 8)
	c.Spawn(0, "inc", func(ctx *tg.Ctx) {
		for i := 0; i < 3; i++ {
			old := ctx.FetchAndInc(ctr)
			fmt.Println("fetched:", old)
		}
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	// Output:
	// fetched: 0
	// fetched: 1
	// fetched: 2
}

// The owner-based update-coherence protocol (§2.3) keeps replicated
// pages consistent: a write on any replica is serialized at the owner
// and reflected to every copy.
func Example_updateCoherence() {
	c := tg.NewCluster(tg.WithNodes(3))
	u := c.AttachUpdateCoherence(tg.CountersCached)
	x := c.AllocShared(0, 8)
	u.SharePage(x, 0, []int{0, 1, 2}) // replicate on all three nodes

	c.Spawn(1, "writer", func(ctx *tg.Ctx) {
		ctx.Store(x, 7)
		ctx.Fence()
	})
	if err := c.Run(); err != nil {
		panic(err)
	}
	off := c.SharedOffset(x)
	fmt.Println(
		c.Nodes[0].Mem.ReadWord(off),
		c.Nodes[1].Mem.ReadWord(off),
		c.Nodes[2].Mem.ReadWord(off))
	// Output: 7 7 7
}

// Locks and barriers are built on the remote atomics, with the paper's
// MEMORY_BARRIER embedded in every release (§2.3.5).
func Example_synchronization() {
	c := tg.NewCluster(tg.WithNodes(2))
	lock := c.NewLock(0)
	count := c.AllocShared(0, 8)
	for i := 0; i < 2; i++ {
		c.Spawn(i, "adder", func(ctx *tg.Ctx) {
			for k := 0; k < 5; k++ {
				lock.Acquire(ctx)
				ctx.Store(count, ctx.Load(count)+1)
				lock.Release(ctx)
			}
		})
	}
	if err := c.Run(); err != nil {
		panic(err)
	}
	var final uint64
	c.Spawn(0, "check", func(ctx *tg.Ctx) { final = ctx.Load(count) })
	if err := c.Run(); err != nil {
		panic(err)
	}
	fmt.Println("count:", final)
	// Output: count: 10
}
